// Reduction-equivalence suite (DESIGN.md §3.6, §3.8): for every lemma class
// and a grid of holds- and VIOLATED-configurations, exploring a reduced
// state space (VerifyOptions::reduction = kSymmetry, kPartialOrder or
// kSymPor) must preserve the verdict of the unreduced run on every engine —
// sequential, parallel at 1/2/4 threads, symbolic — while all reduced
// engines agree on the exact quotient state/transition counts, and every
// re-concretized counterexample replays edge-by-edge through the RAW model
// (validate_lasso / inline invariant path replay), exactly like an
// unreduced counterexample would.
// Suite name carries the "EngineEquivalence" stem so the TSan CI job picks
// the parallel reduced runs up.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/verifier.hpp"
#include "mc/lasso_check.hpp"
#include "tta/properties.hpp"

namespace tt::core {
namespace {

struct ReductionCell {
  int n;
  int degree;  ///< 0 = faulty-hub cell (channel swap inadmissible there)
  Lemma lemma;
  mc::ReductionKind reduction = mc::ReductionKind::kSymmetry;
};

std::string reduction_suffix(mc::ReductionKind k) {
  switch (k) {
    case mc::ReductionKind::kSymmetry: return "sym";
    case mc::ReductionKind::kPartialOrder: return "por";
    case mc::ReductionKind::kSymPor: return "sympor";
    case mc::ReductionKind::kNone: break;
  }
  return "none";
}

std::string cell_name(const ::testing::TestParamInfo<ReductionCell>& info) {
  return std::string(to_string(info.param.lemma)) + "_n" + std::to_string(info.param.n) +
         (info.param.degree == 0 ? "_hub" : "_deg" + std::to_string(info.param.degree)) + "_" +
         reduction_suffix(info.param.reduction);
}

tta::ClusterConfig cell_config(const ReductionCell& cell) {
  tta::ClusterConfig cfg;
  cfg.n = cell.n;
  cfg.init_window = 3;
  if (cell.degree == 0) {
    cfg.faulty_hub = 0;
    cfg.hub_init_window = 1;  // the §5.2 VIOLATED liveness configuration
  } else {
    cfg.faulty_node = 0;
    cfg.fault_degree = cell.degree;
    cfg.hub_init_window = 3;
  }
  if (cell.lemma == Lemma::kTimeliness) cfg.timeliness_bound = 10 * cell.n;
  if (cell.lemma == Lemma::kReintegration) cfg.transient_restarts = 1;
  return cfg;
}

VerificationResult run(const ReductionCell& cell, mc::EngineKind engine, int threads,
                       mc::ReductionKind reduction) {
  VerifyOptions opts;
  opts.engine = engine;
  opts.threads = threads;
  opts.reduction = reduction;
  return verify(cell_config(cell), cell.lemma, opts);
}

/// Replays a concretized counterexample against the RAW model: initial root,
/// every consecutive pair an edge, final state violating the lemma's
/// invariant (liveness lassos go through mc::validate_lasso instead).
void expect_invariant_trace_replays(const ReductionCell& cell, const VerificationResult& r,
                                    const std::string& label) {
  const tta::ClusterConfig cfg = prepare_config(cell_config(cell), cell.lemma);
  const tta::Cluster raw(cfg);
  ASSERT_FALSE(r.trace.empty()) << label;

  bool is_init = false;
  raw.initial_states([&](const tta::Cluster::State& s) {
    if (s == r.trace.front()) is_init = true;
  });
  EXPECT_TRUE(is_init) << label << ": concretized trace must start at a raw initial state";

  for (std::size_t i = 0; i + 1 < r.trace.size(); ++i) {
    bool found = false;
    raw.successors(r.trace[i], [&](const tta::Cluster::State& t) {
      if (t == r.trace[i + 1]) found = true;
    });
    ASSERT_TRUE(found) << label << ": missing raw edge at index " << i;
  }
  const tta::ClusterState last = raw.unpack(r.trace.back());
  const bool ok = cell.lemma == Lemma::kHubAgreement ? tta::holds_hub_agreement(cfg, last)
                                                     : tta::holds_safety(cfg, last);
  EXPECT_FALSE(ok) << label << ": final state does not violate the invariant";
}

void expect_lasso_replays(const ReductionCell& cell, const VerificationResult& r,
                          bool require_initial_root, const std::string& label) {
  const tta::ClusterConfig cfg = prepare_config(cell_config(cell), cell.lemma);
  const tta::Cluster raw(cfg);
  auto goal = [&](const tta::Cluster::State& s) {
    return tta::all_correct_active(cfg, raw.unpack(s));
  };
  std::string why;
  if (r.verdict_text == "VIOLATED(deadlock)") {
    EXPECT_TRUE(mc::validate_deadlock_path(raw, goal, r.trace,
                                           /*goal_free_path=*/cell.lemma == Lemma::kLiveness,
                                           &why))
        << label << ": " << why;
    return;
  }
  EXPECT_TRUE(mc::validate_lasso(raw, goal, r.trace, r.loop_start, require_initial_root, &why))
      << label << ": " << why;
}

class ReductionEngineEquivalence : public ::testing::TestWithParam<ReductionCell> {};

TEST_P(ReductionEngineEquivalence, QuotientPreservesVerdictsAcrossAllEngines) {
  const ReductionCell cell = GetParam();
  const auto raw = run(cell, mc::EngineKind::kSequential, 1, mc::ReductionKind::kNone);
  ASSERT_TRUE(raw.exhausted);

  const auto red_seq = run(cell, mc::EngineKind::kSequential, 1, cell.reduction);
  EXPECT_EQ(red_seq.verdict_text, raw.verdict_text);
  EXPECT_EQ(red_seq.holds, raw.holds);
  if (raw.holds) {
    // Exhaustive sweeps: the quotient never has MORE states than the raw
    // graph. (Violated runs stop at the first counterexample, so their
    // partial counts depend on search order and are not comparable.)
    EXPECT_LE(red_seq.stats.states, raw.stats.states);
    EXPECT_LE(red_seq.stats.transitions, raw.stats.transitions);
  }
  if (cell.reduction != mc::ReductionKind::kPartialOrder) {
    EXPECT_GT(red_seq.stats.canon_ops, std::size_t{0});
  } else {
    EXPECT_EQ(red_seq.stats.canon_ops, std::size_t{0});  // no symmetry component
  }
  if (cell.reduction != mc::ReductionKind::kSymmetry && cell.lemma != Lemma::kReintegration) {
    // Every enumerated transition met the por gate exactly once. (The AG AF
    // engine sweeps the graph twice — reachable set, then lasso search — so
    // its cluster-level counters cover both sweeps and are excluded.)
    EXPECT_EQ(red_seq.stats.ample_sets + red_seq.stats.proviso_fallbacks,
              red_seq.stats.transitions);
  }

  for (int threads : {1, 2, 4}) {
    const auto red_par = run(cell, mc::EngineKind::kParallel, threads, cell.reduction);
    const std::string label = "par@" + std::to_string(threads);
    EXPECT_EQ(red_par.verdict_text, raw.verdict_text) << label;
    if (raw.holds && cell.lemma != Lemma::kReintegration) {
      // Exhaustive holds-runs sweep the same quotient: exact counts agree
      // with the sequential reduced engine at every thread count. (AG AF
      // holds-runs differ structurally between DFS and OWCTY sweeps.)
      EXPECT_EQ(red_par.stats.states, red_seq.stats.states) << label;
      EXPECT_EQ(red_par.stats.transitions, red_seq.stats.transitions) << label;
    }
    if (!raw.holds) {
      const bool liveness = !is_invariant_lemma(cell.lemma);
      if (liveness) {
        expect_lasso_replays(cell, red_par, /*require_initial_root=*/true, label);
      } else {
        expect_invariant_trace_replays(cell, red_par, label);
      }
    }
  }

  const auto red_sym = run(cell, mc::EngineKind::kSymbolic, 1, cell.reduction);
  EXPECT_EQ(red_sym.verdict_text, raw.verdict_text) << "sym";
  if (raw.holds && cell.lemma == Lemma::kLiveness) {
    EXPECT_EQ(red_sym.stats.states, red_seq.stats.states) << "sym";
    EXPECT_EQ(red_sym.stats.transitions, red_seq.stats.transitions) << "sym";
  }
  if (is_invariant_lemma(cell.lemma) && raw.holds) {
    EXPECT_EQ(red_sym.stats.states, red_seq.stats.states) << "sym";
    EXPECT_EQ(red_sym.stats.transitions, red_seq.stats.transitions) << "sym";
  }
  if (!raw.holds) {
    if (!is_invariant_lemma(cell.lemma)) {
      expect_lasso_replays(cell, red_sym, /*require_initial_root=*/true, "sym");
    } else {
      expect_invariant_trace_replays(cell, red_sym, "sym");
    }
  }

  if (!raw.holds) {
    const bool liveness = !is_invariant_lemma(cell.lemma);
    if (liveness) {
      // Sequential AG AF lassos root anywhere in the reachable set; the
      // concretized stem then starts at the (raw-valid) representative.
      expect_lasso_replays(cell, red_seq,
                           /*require_initial_root=*/cell.lemma == Lemma::kLiveness, "seq");
    } else {
      expect_invariant_trace_replays(cell, red_seq, "seq");
    }
  }
}

TEST_P(ReductionEngineEquivalence, ReducedParallelIsDeterministicAcrossThreadCounts) {
  const ReductionCell cell = GetParam();
  const auto base = run(cell, mc::EngineKind::kParallel, 1, cell.reduction);
  for (int threads : {2, 4}) {
    const auto r = run(cell, mc::EngineKind::kParallel, threads, cell.reduction);
    EXPECT_EQ(r.verdict_text, base.verdict_text) << "threads=" << threads;
    EXPECT_EQ(r.stats.states, base.stats.states) << "threads=" << threads;
    EXPECT_EQ(r.stats.transitions, base.stats.transitions) << "threads=" << threads;
    EXPECT_EQ(r.stats.frontier_sizes, base.stats.frontier_sizes) << "threads=" << threads;
    // Identical concretized counterexample at every thread count: the
    // quotient trace is deterministic and the replay itself is too.
    EXPECT_EQ(r.trace, base.trace) << "threads=" << threads;
    EXPECT_EQ(r.loop_start, base.loop_start) << "threads=" << threads;
  }
}

std::vector<ReductionCell> grid_cells() {
  // The lemma/config grid, independent of the reduction:
  //  - invariant holds-cells (safety at several degrees, timeliness);
  //  - invariant VIOLATED cells (hub agreement breaks at degree >= 3):
  //    exercises invariant-trace concretization;
  //  - liveness holds- and VIOLATED cells (degree 0 = faulty hub with a
  //    one-slot wake window, the §5.2 violation): exercises lasso
  //    concretization with loop_start remapping;
  //  - AG AF cells (restart budget): seq lassos root mid-graph, so the
  //    concretized stem starts at a representative instead.
  const ReductionCell base[] = {
      {3, 2, Lemma::kSafety},        {3, 6, Lemma::kSafety},
      {4, 6, Lemma::kSafety},        {3, 6, Lemma::kTimeliness},
      {3, 3, Lemma::kHubAgreement},  {3, 6, Lemma::kHubAgreement},
      {3, 2, Lemma::kLiveness},      {3, 0, Lemma::kLiveness},
      {4, 0, Lemma::kLiveness},      {3, 2, Lemma::kReintegration},
      {3, 0, Lemma::kReintegration},
  };
  std::vector<ReductionCell> out;
  for (const auto& cell : base) {
    // The full grid under sym (the PR 6 suite) and under sym+por (the fig. 6
    // workhorse; acceptance requires every golden cell to agree with the
    // unreduced run under it). Note the faulty-hub and hub-agreement cells
    // double as por-gate-decline coverage: there the clamp certificate is
    // inadmissible or the gate closes, and sym+por must degrade to sym.
    for (const auto red : {mc::ReductionKind::kSymmetry, mc::ReductionKind::kSymPor}) {
      ReductionCell c = cell;
      c.reduction = red;
      out.push_back(c);
    }
  }
  // por alone on a representative subset: a holds-invariant, the VIOLATED
  // invariant, a holds- and a VIOLATED liveness cell, and an AG AF cell.
  for (const auto& cell :
       {ReductionCell{3, 6, Lemma::kSafety}, ReductionCell{3, 6, Lemma::kHubAgreement},
        ReductionCell{3, 2, Lemma::kLiveness}, ReductionCell{3, 0, Lemma::kLiveness},
        ReductionCell{3, 2, Lemma::kReintegration}}) {
    ReductionCell c = cell;
    c.reduction = mc::ReductionKind::kPartialOrder;
    out.push_back(c);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, ReductionEngineEquivalence, ::testing::ValuesIn(grid_cells()),
                         cell_name);

TEST(ReductionGoldenQuotients, Fig6AndFig4QuotientCountsAreExact) {
  // The reduced companion of golden_counts_test.cpp's grid: exact quotient
  // state/transition counts, pinned. The reduction_ratio table in
  // EXPERIMENTS.md derives from these numbers.
  struct Cell {
    const char* name;
    Lemma lemma;
    int n;
    int degree;
    std::size_t states;
    std::size_t transitions;
    mc::ReductionKind reduction = mc::ReductionKind::kSymmetry;
  };
  const auto kSymPor = mc::ReductionKind::kSymPor;
  const Cell cells[] = {
      {"fig6_safety_n3", Lemma::kSafety, 3, 6, 534, 6289},
      {"fig6_safety_n4", Lemma::kSafety, 4, 6, 3706, 52449},
      {"fig4_safety_deg1", Lemma::kSafety, 4, 1, 18190, 22463},
      {"fig4_safety_deg3", Lemma::kSafety, 4, 3, 31326, 469042},
      {"fig4_liveness_deg1", Lemma::kLiveness, 4, 1, 18186, 22459},
      {"fig4_liveness_deg3", Lemma::kLiveness, 4, 3, 31168, 467918},
      {"fig4_timeliness_deg1", Lemma::kTimeliness, 4, 1, 18300, 22573},
      {"fig4_timeliness_deg3", Lemma::kTimeliness, 4, 3, 32218, 474323},
      // The sym+por quotients of the same cells (the clamp rides on top of
      // the orbit reduction; DESIGN.md §3.8 derives the expected shrink).
      {"fig6_safety_n3_sympor", Lemma::kSafety, 3, 6, 531, 6277, kSymPor},
      {"fig6_safety_n4_sympor", Lemma::kSafety, 4, 6, 2847, 41949, kSymPor},
      {"fig4_safety_deg1_sympor", Lemma::kSafety, 4, 1, 11377, 15481, kSymPor},
      {"fig4_safety_deg3_sympor", Lemma::kSafety, 4, 3, 16055, 293851, kSymPor},
      {"fig4_liveness_deg1_sympor", Lemma::kLiveness, 4, 1, 11373, 15477, kSymPor},
      {"fig4_liveness_deg3_sympor", Lemma::kLiveness, 4, 3, 15897, 292727, kSymPor},
      {"fig4_timeliness_deg1_sympor", Lemma::kTimeliness, 4, 1, 12285, 16419, kSymPor},
      {"fig4_timeliness_deg3_sympor", Lemma::kTimeliness, 4, 3, 18995, 320104, kSymPor},
  };
  for (const auto& cell : cells) {
    tta::ClusterConfig cfg;
    cfg.faulty_node = 0;
    cfg.feedback = true;
    if (cell.degree == 6 && cell.lemma == Lemma::kSafety) {
      cfg.n = cell.n;
      cfg.fault_degree = 6;
      cfg.init_window = cell.n;
      cfg.hub_init_window = cell.n;
    } else {
      cfg.n = 4;
      cfg.fault_degree = cell.degree;
      cfg.init_window = 8;
      cfg.hub_init_window = 8;
      if (cell.lemma == Lemma::kTimeliness) cfg.timeliness_bound = 6 * cfg.n;
    }
    VerifyOptions opts;
    opts.engine = mc::EngineKind::kSequential;
    opts.reduction = cell.reduction;
    const auto r = verify(cfg, cell.lemma, opts);
    ASSERT_TRUE(r.holds) << cell.name << ": " << r.verdict_text;
    EXPECT_EQ(r.stats.states, cell.states) << cell.name;
    EXPECT_EQ(r.stats.transitions, cell.transitions) << cell.name;
    if (cell.lemma != Lemma::kLiveness) {
      // Hash-once carries over to the quotient: exactly one canonicalization
      // and one hash per enumerated transition plus one per emitted initial
      // state.
      ASSERT_FALSE(r.stats.frontier_sizes.empty()) << cell.name;
      EXPECT_EQ(r.stats.hash_ops, r.stats.transitions + r.stats.frontier_sizes[0]) << cell.name;
      EXPECT_EQ(r.stats.canon_ops, r.stats.transitions + r.stats.frontier_sizes[0]) << cell.name;
    }
    if (cell.reduction == kSymPor) {
      // Every enumerated transition met the por gate exactly once, and the
      // clamp actually pruned something on every one of these cells.
      EXPECT_EQ(r.stats.ample_sets + r.stats.proviso_fallbacks, r.stats.transitions)
          << cell.name;
      EXPECT_GT(r.stats.pruned_combos, std::size_t{0}) << cell.name;
    }
  }
}

}  // namespace
}  // namespace tt::core
