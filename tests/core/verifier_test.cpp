#include "core/verifier.hpp"

#include <gtest/gtest.h>

#include "tta/properties.hpp"
#include "tta/trace_printer.hpp"

namespace tt::core {
namespace {

tta::ClusterConfig tiny() {
  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.init_window = 2;
  cfg.hub_init_window = 2;
  return cfg;
}

TEST(Verifier, FaultFreeSafetyHolds) {
  auto r = verify(tiny(), Lemma::kSafety);
  EXPECT_TRUE(r.holds);
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.stats.states, 100u);
  EXPECT_TRUE(r.trace.empty());
}

TEST(Verifier, FaultFreeLivenessHolds) {
  auto r = verify(tiny(), Lemma::kLiveness);
  EXPECT_TRUE(r.holds) << r.verdict_text;
  EXPECT_TRUE(r.exhausted);
}

TEST(Verifier, FaultFreeHubAgreementHolds) {
  auto r = verify(tiny(), Lemma::kHubAgreement);
  EXPECT_TRUE(r.holds) << r.verdict_text;
}

TEST(Verifier, SafetyHoldsWithLowDegreeFaultyNode) {
  auto cfg = tiny();
  cfg.faulty_node = 0;
  cfg.fault_degree = 2;
  auto r = verify(cfg, Lemma::kSafety);
  EXPECT_TRUE(r.holds) << r.verdict_text;
  EXPECT_TRUE(r.exhausted);
}

TEST(Verifier, LivenessHoldsWithLowDegreeFaultyNode) {
  auto cfg = tiny();
  cfg.faulty_node = 0;
  cfg.fault_degree = 2;
  auto r = verify(cfg, Lemma::kLiveness);
  EXPECT_TRUE(r.holds) << r.verdict_text;
}

TEST(Verifier, TimelinessNeedsBound) {
  EXPECT_THROW((void)verify(tiny(), Lemma::kTimeliness), std::invalid_argument);
}

TEST(Verifier, Safety2NeedsFaultyHub) {
  auto cfg = tiny();
  cfg.timeliness_bound = 10;
  EXPECT_THROW((void)verify(cfg, Lemma::kSafety2), std::invalid_argument);
}

TEST(Verifier, TimelinessFailsForTinyBoundAndHoldsForLargeBound) {
  auto cfg = tiny();
  cfg.timeliness_bound = 2;  // absurdly tight: must be violated
  auto r = verify(cfg, Lemma::kTimeliness);
  EXPECT_FALSE(r.holds);
  ASSERT_FALSE(r.trace.empty());
  // The violating state carries the saturated counter value bound+1.
  {
    const tta::Cluster cluster(prepare_config(cfg, Lemma::kTimeliness));
    const auto last = cluster.unpack(r.trace.back());
    EXPECT_EQ(last.startup_time, 3);
  }

  cfg.timeliness_bound = 60;  // generous: must hold
  auto r2 = verify(cfg, Lemma::kTimeliness);
  EXPECT_TRUE(r2.holds) << r2.verdict_text;
}

TEST(Verifier, CounterexampleTraceIsWellFormed) {
  auto cfg = tiny();
  cfg.timeliness_bound = 2;
  auto r = verify(cfg, Lemma::kTimeliness);
  ASSERT_FALSE(r.trace.empty());
  // Each consecutive pair must be a real transition of the model.
  const tta::Cluster cluster(prepare_config(cfg, Lemma::kTimeliness));
  for (std::size_t i = 0; i + 1 < r.trace.size(); ++i) {
    bool found = false;
    cluster.successors(r.trace[i], [&](const tta::Cluster::State& t) {
      if (t == r.trace[i + 1]) found = true;
    });
    EXPECT_TRUE(found) << "trace step " << i << " is not a transition";
  }
}

TEST(Verifier, SearchLimitReportedAsNotExhausted) {
  mc::SearchLimits limits;
  limits.max_states = 50;
  auto r = verify(tiny(), Lemma::kSafety, limits);
  EXPECT_FALSE(r.exhausted);
  EXPECT_TRUE(r.holds == false || !r.exhausted);
}

TEST(Verifier, PrepareConfigClearsBoundForSafety) {
  auto cfg = tiny();
  cfg.timeliness_bound = 10;
  const auto prepared = prepare_config(cfg, Lemma::kSafety);
  EXPECT_EQ(prepared.timeliness_bound, 0);
}

}  // namespace
}  // namespace tt::core
