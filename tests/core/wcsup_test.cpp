#include "core/wcsup.hpp"

#include <gtest/gtest.h>

namespace tt::core {
namespace {

TEST(Wcsup, FindsMinimalPassingBoundFaultFree) {
  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.init_window = 2;
  cfg.hub_init_window = 2;
  auto r = find_worst_case_startup(cfg, Lemma::kTimeliness, 1, 80);
  ASSERT_GT(r.minimal_bound, 1);
  // Every bound below the minimum must have failed, in order.
  ASSERT_EQ(static_cast<int>(r.failing_bounds.size()), r.minimal_bound - 1);
  for (std::size_t i = 0; i < r.failing_bounds.size(); ++i) {
    EXPECT_EQ(r.failing_bounds[i], static_cast<int>(i) + 1);
  }
  EXPECT_FALSE(r.worst_trace.empty());

  // Minimality cross-check: bound-1 fails, bound holds.
  cfg.timeliness_bound = r.minimal_bound;
  EXPECT_TRUE(verify(cfg, Lemma::kTimeliness).holds);
  cfg.timeliness_bound = r.minimal_bound - 1;
  EXPECT_FALSE(verify(cfg, Lemma::kTimeliness).holds);
}

TEST(Wcsup, RejectsNonDeadlineLemma) {
  tta::ClusterConfig cfg;
  cfg.n = 3;
  EXPECT_THROW((void)find_worst_case_startup(cfg, Lemma::kSafety, 1, 10),
               std::invalid_argument);
  EXPECT_THROW((void)find_worst_case_startup(cfg, Lemma::kTimeliness, 5, 4),
               std::invalid_argument);
}

TEST(Wcsup, ReportsNotFoundWhenRangeTooSmall) {
  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.init_window = 2;
  cfg.hub_init_window = 2;
  auto r = find_worst_case_startup(cfg, Lemma::kTimeliness, 1, 2);
  EXPECT_EQ(r.minimal_bound, -1);
  EXPECT_EQ(r.failing_bounds.size(), 2u);
}

}  // namespace
}  // namespace tt::core
