#include "core/scenario_math.hpp"

#include <gtest/gtest.h>

namespace tt::core {
namespace {

TEST(ScenarioMath, PaperParameterHelpers) {
  // Fig. 5 columns: delta_init 24/32/40 and wcsup 16/23/30 for n = 3/4/5.
  EXPECT_EQ(paper_delta_init(3), 24);
  EXPECT_EQ(paper_delta_init(4), 32);
  EXPECT_EQ(paper_delta_init(5), 40);
  EXPECT_EQ(paper_wcsup_slots(3), 16);
  EXPECT_EQ(paper_wcsup_slots(4), 23);
  EXPECT_EQ(paper_wcsup_slots(5), 30);
}

TEST(ScenarioMath, Figure5StartupScenarioColumn) {
  // |S_sup| = delta_init^(n+1): "3.3e5, 3.3e7, 4.1e9".
  EXPECT_EQ(paper_scenarios(3).startup_scenarios.to_decimal(), "331776");
  EXPECT_EQ(paper_scenarios(4).startup_scenarios.to_decimal(), "33554432");
  EXPECT_EQ(paper_scenarios(5).startup_scenarios.to_decimal(), "4096000000");
}

TEST(ScenarioMath, Figure5FaultScenarioColumn) {
  // |S_f.n.| = (6^2)^wcsup: ~8e24, ~6e35, ~4.9e46.
  EXPECT_EQ(paper_scenarios(3).fault_scenarios.to_scientific(1), "8e24");
  EXPECT_EQ(paper_scenarios(4).fault_scenarios.to_scientific(1), "6e35");
  EXPECT_EQ(paper_scenarios(5).fault_scenarios.to_scientific(2), "4.9e46");
}

TEST(ScenarioMath, GeneralFormula) {
  const auto s = count_scenarios(/*n=*/2, /*delta_init=*/3, /*delta_failure=*/2,
                                 /*wcsup=*/4);
  EXPECT_EQ(s.startup_scenarios, BigUint(27));      // 3^3
  EXPECT_EQ(s.fault_scenarios, BigUint(256));       // (2^2)^4
}

TEST(ScenarioMath, RejectsNonPositiveParameters) {
  EXPECT_THROW(count_scenarios(0, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(count_scenarios(1, 0, 1, 1), std::invalid_argument);
  EXPECT_THROW(count_scenarios(1, 1, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tt::core
