// Golden-count regression net for the successor pipeline: the exact
// reachable-state and transition counts of small fig4/fig5/fig6 bench
// configurations, pinned for the sequential engine, the parallel engine at
// 1, 2 and 4 threads, and the symbolic (BDD-set) engine, whose count comes
// from exact model counting instead of a table size. Any change to
// successor enumeration order, fault enumeration, packing, interning,
// duplicate suppression or BDD counting that alters the explored graph —
// rather than merely its cost — trips these exact numbers.
//
// The same runs assert the hash-once contract end to end on the real model:
// stats.hash_ops == transitions + initial-state emissions, i.e. hash_words
// ran exactly once per candidate and was reused for the cache probe, the
// find, the shard routing and the insert (DESIGN.md §3.2).
#include <gtest/gtest.h>

#include <string>

#include "core/verifier.hpp"
#include "mc/reachability.hpp"
#include "mc/symbolic_reachability.hpp"
#include "tta/cluster.hpp"

namespace tt::core {
namespace {

struct GoldenCell {
  const char* name;
  Lemma lemma;
  int n;
  int degree;
  std::size_t states;
  std::size_t transitions;
};

tta::ClusterConfig fig6_config(int n) {
  tta::ClusterConfig cfg;
  cfg.n = n;
  cfg.faulty_node = 0;
  cfg.fault_degree = 6;
  cfg.feedback = true;
  cfg.init_window = n;
  cfg.hub_init_window = n;
  return cfg;
}

tta::ClusterConfig fig4_config(int degree, Lemma lemma) {
  tta::ClusterConfig cfg;
  cfg.n = 4;
  cfg.faulty_node = 0;
  cfg.fault_degree = degree;
  cfg.feedback = true;
  cfg.init_window = 8;
  cfg.hub_init_window = 8;
  if (lemma == Lemma::kTimeliness) cfg.timeliness_bound = 6 * cfg.n;
  return cfg;
}

void expect_hash_once(const VerificationResult& r, const std::string& label) {
  // One hash per enumerated transition plus one per emitted initial state
  // (these configs have a single initial state: no faulty hub, so no frozen
  // pattern dimension). frontier_sizes[0] is the interned initial count,
  // which equals the emitted count because initial states are distinct.
  ASSERT_FALSE(r.stats.frontier_sizes.empty()) << label;
  EXPECT_EQ(r.stats.hash_ops, r.stats.transitions + r.stats.frontier_sizes[0]) << label;
}

class GoldenCounts : public ::testing::TestWithParam<GoldenCell> {};

TEST_P(GoldenCounts, ExactAcrossEnginesAndThreadCounts) {
  const GoldenCell& cell = GetParam();
  const tta::ClusterConfig cfg = cell.lemma == Lemma::kSafety && cell.degree == 6
                                     ? fig6_config(cell.n)
                                     : fig4_config(cell.degree, cell.lemma);

  VerifyOptions seq_opts;
  seq_opts.engine = mc::EngineKind::kSequential;
  const auto seq = verify(cfg, cell.lemma, seq_opts);
  ASSERT_TRUE(seq.holds) << cell.name << ": " << seq.verdict_text;
  EXPECT_EQ(seq.stats.states, cell.states) << cell.name;
  EXPECT_EQ(seq.stats.transitions, cell.transitions) << cell.name;

  if (cell.lemma == Lemma::kLiveness) {
    // F(goal) liveness: the sequential DFS, the parallel OWCTY engine and
    // the symbolic EG engine all sweep exactly the reachable goal-free
    // region once on a holds-run, so states and transitions are pinned for
    // all three, hash_ops matches between seq and par (hash-once on the
    // same candidate stream; the hash-once formula below is BFS-specific),
    // and sym never hashes at all.
    EXPECT_GT(seq.stats.hash_ops, std::size_t{0}) << cell.name;
    for (int threads : {1, 2, 4}) {
      VerifyOptions par_opts;
      par_opts.engine = mc::EngineKind::kParallel;
      par_opts.threads = threads;
      const auto par = verify(cfg, cell.lemma, par_opts);
      const std::string label = std::string(cell.name) + "/par@" + std::to_string(threads);
      ASSERT_TRUE(par.holds) << label << ": " << par.verdict_text;
      EXPECT_EQ(par.engine_used, mc::EngineKind::kParallel) << label;
      EXPECT_EQ(par.stats.states, cell.states) << label;
      EXPECT_EQ(par.stats.transitions, cell.transitions) << label;
      EXPECT_EQ(par.stats.hash_ops, seq.stats.hash_ops) << label;
      EXPECT_EQ(par.stats.residue_states, std::size_t{0}) << label;
    }
    VerifyOptions sym_opts;
    sym_opts.engine = mc::EngineKind::kSymbolic;
    const auto sym = verify(cfg, cell.lemma, sym_opts);
    const std::string label = std::string(cell.name) + "/sym";
    ASSERT_TRUE(sym.holds) << label << ": " << sym.verdict_text;
    EXPECT_EQ(sym.engine_used, mc::EngineKind::kSymbolic) << label;
    EXPECT_EQ(sym.stats.states, cell.states) << label;
    EXPECT_EQ(sym.stats.transitions, cell.transitions) << label;
    EXPECT_EQ(sym.stats.hash_ops, std::size_t{0}) << label;
    return;
  }
  expect_hash_once(seq, std::string(cell.name) + "/seq");

  for (int threads : {1, 2, 4}) {
    VerifyOptions par_opts;
    par_opts.engine = mc::EngineKind::kParallel;
    par_opts.threads = threads;
    const auto par = verify(cfg, cell.lemma, par_opts);
    const std::string label = std::string(cell.name) + "/par@" + std::to_string(threads);
    ASSERT_TRUE(par.holds) << label << ": " << par.verdict_text;
    EXPECT_EQ(par.stats.states, cell.states) << label;
    EXPECT_EQ(par.stats.transitions, cell.transitions) << label;
    expect_hash_once(par, label);
  }

  // The symbolic engine's state count comes from exact BDD model counting
  // over the compressed reached set — it must agree bit-for-bit with the
  // interning tables of the explicit engines, and never hash a state.
  VerifyOptions sym_opts;
  sym_opts.engine = mc::EngineKind::kSymbolic;
  const auto sym = verify(cfg, cell.lemma, sym_opts);
  const std::string label = std::string(cell.name) + "/sym";
  ASSERT_TRUE(sym.holds) << label << ": " << sym.verdict_text;
  EXPECT_EQ(sym.engine_used, mc::EngineKind::kSymbolic) << label;
  EXPECT_EQ(sym.stats.states, cell.states) << label;
  EXPECT_EQ(sym.stats.transitions, cell.transitions) << label;
  EXPECT_EQ(sym.stats.hash_ops, std::size_t{0}) << label;
  EXPECT_GT(sym.stats.bdd_peak_live_nodes, std::size_t{0}) << label;
}

TEST_P(GoldenCounts, LockFreeStoreReproducesGoldenCountsExactly) {
  // The store swap must be invisible against the pinned golden counts:
  // same states, transitions and hash-ops (hash-once survives the store) on
  // the sequential engine and the parallel engine at 1/2/4 threads.
  const GoldenCell& cell = GetParam();
  const tta::ClusterConfig cfg = cell.lemma == Lemma::kSafety && cell.degree == 6
                                     ? fig6_config(cell.n)
                                     : fig4_config(cell.degree, cell.lemma);

  VerifyOptions seq_opts;
  seq_opts.engine = mc::EngineKind::kSequential;
  seq_opts.store.kind = mc::StoreKind::kLockFree;
  const auto seq = verify(cfg, cell.lemma, seq_opts);
  ASSERT_TRUE(seq.holds) << cell.name << ": " << seq.verdict_text;
  EXPECT_EQ(seq.stats.states, cell.states) << cell.name;
  EXPECT_EQ(seq.stats.transitions, cell.transitions) << cell.name;
  if (cell.lemma != Lemma::kLiveness) {
    expect_hash_once(seq, std::string(cell.name) + "/lockfree_seq");
  }

  for (int threads : {1, 2, 4}) {
    VerifyOptions par_opts;
    par_opts.engine = mc::EngineKind::kParallel;
    par_opts.threads = threads;
    par_opts.store.kind = mc::StoreKind::kLockFree;
    const auto par = verify(cfg, cell.lemma, par_opts);
    const std::string label =
        std::string(cell.name) + "/lockfree_par@" + std::to_string(threads);
    ASSERT_TRUE(par.holds) << label << ": " << par.verdict_text;
    EXPECT_EQ(par.stats.states, cell.states) << label;
    EXPECT_EQ(par.stats.transitions, cell.transitions) << label;
    EXPECT_EQ(par.stats.hash_ops, seq.stats.hash_ops) << label;
  }
}

TEST_P(GoldenCounts, ProofEngineProvesInvariantCellsUnbounded) {
  // The proof-engine cross-check on the golden grid: every invariant cell
  // the explicit engines verify by exhaustion must also come back PROVED@k
  // from k-induction over the star IR — an unbounded guarantee, not a
  // failed refutation — with the run's single incremental solver showing
  // real clause reuse across its solve() calls. (ic3 is exercised on
  // reduced cells in engine_equivalence_test.cpp: the full-window golden
  // cells are beyond its obligation budget in test time.)
  const GoldenCell& cell = GetParam();
  if (cell.lemma == Lemma::kLiveness) {
    GTEST_SKIP() << "proof engines are invariant-only";
  }
  const tta::ClusterConfig cfg = cell.lemma == Lemma::kSafety && cell.degree == 6
                                     ? fig6_config(cell.n)
                                     : fig4_config(cell.degree, cell.lemma);

  VerifyOptions opts;
  opts.engine = mc::EngineKind::kKInduction;
  const auto proof = verify(cfg, cell.lemma, opts);
  ASSERT_TRUE(proof.holds) << cell.name << ": " << proof.verdict_text;
  EXPECT_EQ(proof.engine_used, mc::EngineKind::kKInduction) << cell.name;
  EXPECT_EQ(proof.verdict_text.rfind("PROVED@", 0), 0u)
      << cell.name << ": " << proof.verdict_text;
  EXPECT_GT(proof.stats.solver_calls, 0u) << cell.name;
  EXPECT_GT(proof.stats.clauses_reused, 0u) << cell.name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GoldenCounts,
    ::testing::Values(
        GoldenCell{"fig6_safety_n3", Lemma::kSafety, 3, 6, 1276, 45899},
        GoldenCell{"fig6_safety_n4", Lemma::kSafety, 4, 6, 6592, 482344},
        GoldenCell{"fig4_safety_deg1", Lemma::kSafety, 4, 1, 18404, 22677},
        GoldenCell{"fig4_safety_deg3", Lemma::kSafety, 4, 3, 46944, 1238320},
        GoldenCell{"fig4_liveness_deg1", Lemma::kLiveness, 4, 1, 18400, 22673},
        GoldenCell{"fig4_liveness_deg3", Lemma::kLiveness, 4, 3, 46350, 1232486},
        GoldenCell{"fig4_timeliness_deg1", Lemma::kTimeliness, 4, 1, 18514, 22787},
        GoldenCell{"fig4_timeliness_deg3", Lemma::kTimeliness, 4, 3, 49467, 1262793}),
    [](const ::testing::TestParamInfo<GoldenCell>& info) {
      return std::string(info.param.name);
    });

TEST(GoldenCounts, Fig5FaultFreeReachableCounts) {
  // The fig5 "measured reachable states" column: fault-free model,
  // two-slot wake-up window.
  const struct {
    int n;
    std::size_t states;
    std::size_t transitions;
  } cells[] = {{3, 160, 186}, {4, 368, 421}};
  for (const auto& cell : cells) {
    tta::ClusterConfig cfg;
    cfg.n = cell.n;
    cfg.init_window = 2;
    cfg.hub_init_window = 2;
    const tta::Cluster cluster(cfg);
    const auto stats = mc::count_reachable(cluster);
    EXPECT_TRUE(stats.exhausted) << "n=" << cell.n;
    EXPECT_EQ(stats.states, cell.states) << "n=" << cell.n;
    EXPECT_EQ(stats.transitions, cell.transitions) << "n=" << cell.n;

    const auto sym = mc::count_reachable_symbolic(cluster);
    EXPECT_TRUE(sym.exhausted) << "n=" << cell.n << "/sym";
    EXPECT_EQ(sym.states, cell.states) << "n=" << cell.n << "/sym";
    EXPECT_EQ(sym.transitions, cell.transitions) << "n=" << cell.n << "/sym";
  }
}

}  // namespace
}  // namespace tt::core
