// Determinism and equivalence suite for the engine layer: for every lemma x
// configuration in the tier-1 grid, the parallel frontier engine (1, 2 and 4
// threads) and the sequential BFS engine must agree on the verdict and
// produce equal-length (BFS-minimal) counterexamples; parallel runs must be
// bit-identical across thread counts, state counts included. This is the
// regression net behind the "identical verdicts/traces regardless of thread
// count" guarantee documented in DESIGN.md.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/verifier.hpp"
#include "mc/lasso_check.hpp"
#include "support/lockfree_state_index_map.hpp"  // TT_LFSIM_HAS_SPILL
#include "tta/properties.hpp"

namespace tt::core {
namespace {

struct GridCell {
  int n;
  int degree;
  bool feedback;
  Lemma lemma;
};

std::string cell_name(const ::testing::TestParamInfo<GridCell>& info) {
  return std::string(to_string(info.param.lemma)) + "_n" + std::to_string(info.param.n) +
         "_deg" + std::to_string(info.param.degree) +
         (info.param.feedback ? "_fb" : "_nofb");
}

tta::ClusterConfig cell_config(const GridCell& cell) {
  tta::ClusterConfig cfg;
  cfg.n = cell.n;
  cfg.faulty_node = 0;
  cfg.fault_degree = cell.degree;
  cfg.feedback = cell.feedback;
  cfg.init_window = 3;
  cfg.hub_init_window = 3;
  if (cell.lemma == Lemma::kTimeliness) cfg.timeliness_bound = 10 * cell.n;
  return cfg;
}

VerificationResult run(const GridCell& cell, mc::EngineKind engine, int threads) {
  VerifyOptions opts;
  opts.engine = engine;
  opts.threads = threads;
  return verify(cell_config(cell), cell.lemma, opts);
}

class EngineEquivalenceGrid : public ::testing::TestWithParam<GridCell> {};

TEST_P(EngineEquivalenceGrid, ParallelAgreesWithSequentialAtEveryThreadCount) {
  const auto seq = run(GetParam(), mc::EngineKind::kSequential, 1);
  ASSERT_EQ(seq.engine_used, mc::EngineKind::kSequential);

  for (int threads : {1, 2, 4}) {
    const auto par = run(GetParam(), mc::EngineKind::kParallel, threads);
    ASSERT_EQ(par.engine_used, mc::EngineKind::kParallel);
    EXPECT_EQ(par.stats.threads, threads);

    EXPECT_EQ(par.holds, seq.holds) << "threads=" << threads << ": " << par.verdict_text
                                    << " vs " << seq.verdict_text;
    EXPECT_EQ(par.exhausted, seq.exhausted) << "threads=" << threads;
    // Counterexamples are BFS-minimal in both engines, hence equal length.
    EXPECT_EQ(par.trace.size(), seq.trace.size()) << "threads=" << threads;
    if (seq.holds) {
      // Exhaustive agreeing runs visit the same reachable set.
      EXPECT_EQ(par.stats.states, seq.stats.states) << "threads=" << threads;
      EXPECT_EQ(par.stats.transitions, seq.stats.transitions) << "threads=" << threads;
      EXPECT_EQ(par.stats.depth, seq.stats.depth) << "threads=" << threads;
      EXPECT_EQ(par.stats.frontier_sizes, seq.stats.frontier_sizes);
    }
  }
}

TEST_P(EngineEquivalenceGrid, ParallelIsDeterministicAcrossThreadCounts) {
  const auto base = run(GetParam(), mc::EngineKind::kParallel, 1);
  for (int threads : {2, 4}) {
    const auto r = run(GetParam(), mc::EngineKind::kParallel, threads);
    EXPECT_EQ(r.holds, base.holds) << "threads=" << threads;
    EXPECT_EQ(r.stats.states, base.stats.states) << "threads=" << threads;
    EXPECT_EQ(r.stats.transitions, base.stats.transitions) << "threads=" << threads;
    EXPECT_EQ(r.stats.frontier_sizes, base.stats.frontier_sizes) << "threads=" << threads;
    // Not merely equal length: the identical counterexample trace.
    EXPECT_EQ(r.trace, base.trace) << "threads=" << threads;
  }
}

// The tier-1 grid of lemma_sweep_test.cpp, crossed with every invariant
// lemma (the liveness lemma classes get their own grid below, on the OWCTY
// and EG engines). The hub-agreement cells at degree >= 3 are VIOLATED
// cells, so the suite covers counterexample agreement, not just
// holds-verdicts.
INSTANTIATE_TEST_SUITE_P(
    Grid, EngineEquivalenceGrid,
    ::testing::Values(GridCell{3, 1, true, Lemma::kSafety}, GridCell{3, 2, true, Lemma::kSafety},
                      GridCell{3, 3, true, Lemma::kSafety}, GridCell{3, 5, true, Lemma::kSafety},
                      GridCell{3, 6, true, Lemma::kSafety}, GridCell{3, 6, false, Lemma::kSafety},
                      GridCell{4, 6, true, Lemma::kSafety}, GridCell{4, 3, false, Lemma::kSafety},
                      GridCell{3, 2, true, Lemma::kTimeliness},
                      GridCell{3, 6, true, Lemma::kTimeliness},
                      GridCell{4, 6, true, Lemma::kTimeliness},
                      GridCell{3, 2, true, Lemma::kHubAgreement},
                      GridCell{3, 3, true, Lemma::kHubAgreement},
                      GridCell{3, 6, true, Lemma::kHubAgreement},
                      GridCell{4, 6, true, Lemma::kHubAgreement}),
    cell_name);

TEST(EngineEquivalenceHub, Safety2FaultyHubGrid) {
  for (int n : {3, 4}) {
    tta::ClusterConfig cfg;
    cfg.n = n;
    cfg.faulty_hub = 0;
    cfg.init_window = 3;
    cfg.hub_init_window = 1;
    cfg.timeliness_bound = 8 * n;

    VerifyOptions seq_opts;
    seq_opts.engine = mc::EngineKind::kSequential;
    const auto seq = verify(cfg, Lemma::kSafety2, seq_opts);
    for (int threads : {1, 2, 4}) {
      VerifyOptions par_opts;
      par_opts.engine = mc::EngineKind::kParallel;
      par_opts.threads = threads;
      const auto par = verify(cfg, Lemma::kSafety2, par_opts);
      EXPECT_EQ(par.holds, seq.holds) << "n=" << n << " threads=" << threads;
      EXPECT_EQ(par.trace.size(), seq.trace.size());
      if (seq.holds) {
        EXPECT_EQ(par.stats.states, seq.stats.states);
      }
    }
  }
}

TEST(EngineEquivalence, LivenessHonorsRequestedEngine) {
  // PR 4 removed the silent fallback: every engine kind now runs liveness
  // itself (seq = colored DFS, par = OWCTY trimming, sym = EG fixpoint).
  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.faulty_node = 0;
  cfg.fault_degree = 2;
  cfg.init_window = 3;
  cfg.hub_init_window = 3;
  for (const mc::EngineKind kind : {mc::EngineKind::kSequential, mc::EngineKind::kParallel,
                                    mc::EngineKind::kSymbolic}) {
    VerifyOptions opts;
    opts.engine = kind;
    const auto r = verify(cfg, Lemma::kLiveness, opts);
    EXPECT_EQ(r.engine_used, kind) << mc::to_string(kind);
    EXPECT_TRUE(r.holds) << mc::to_string(kind) << ": " << r.verdict_text;
  }
}

TEST(EngineEquivalence, AutoPicksParallelForEveryLemmaClass) {
  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.faulty_node = 0;
  cfg.fault_degree = 1;
  cfg.init_window = 3;
  cfg.hub_init_window = 3;
  EXPECT_EQ(verify(cfg, Lemma::kSafety).engine_used, mc::EngineKind::kParallel);
  EXPECT_EQ(verify(cfg, Lemma::kLiveness).engine_used, mc::EngineKind::kParallel);
  EXPECT_EQ(verify(cfg, Lemma::kReintegration).engine_used, mc::EngineKind::kParallel);
}

// ---------------------------------------------------------------------------
// Liveness equivalence: seq (colored DFS), par (OWCTY trimming, 1/2/4
// threads) and sym (EG fixpoint) must agree on the verdict for every cell;
// par runs must be bit-identical across thread counts; every returned lasso
// must replay through the model. Suite name keeps the "EngineEquivalence"
// stem so the TSan CI job picks it up.
// ---------------------------------------------------------------------------

struct LivenessCell {
  int n;
  int degree;  ///< 0 = faulty-hub cell (the §5.2 VIOLATED configuration)
  Lemma lemma;
};

std::string liveness_cell_name(const ::testing::TestParamInfo<LivenessCell>& info) {
  return std::string(to_string(info.param.lemma)) + "_n" + std::to_string(info.param.n) +
         (info.param.degree == 0 ? "_hub" : "_deg" + std::to_string(info.param.degree));
}

tta::ClusterConfig liveness_cell_config(const LivenessCell& cell) {
  tta::ClusterConfig cfg;
  cfg.n = cell.n;
  cfg.init_window = 3;
  if (cell.degree == 0) {
    cfg.faulty_hub = 0;
    cfg.hub_init_window = 1;
  } else {
    cfg.faulty_node = 0;
    cfg.fault_degree = cell.degree;
    cfg.hub_init_window = 3;
  }
  if (cell.lemma == Lemma::kReintegration) cfg.transient_restarts = 1;
  return cfg;
}

VerificationResult run_liveness(const LivenessCell& cell, mc::EngineKind engine, int threads) {
  VerifyOptions opts;
  opts.engine = engine;
  opts.threads = threads;
  return verify(liveness_cell_config(cell), cell.lemma, opts);
}

class EngineEquivalenceLiveness : public ::testing::TestWithParam<LivenessCell> {};

TEST_P(EngineEquivalenceLiveness, SeqParSymAgreeAndParIsDeterministic) {
  const LivenessCell cell = GetParam();
  const auto seq = run_liveness(cell, mc::EngineKind::kSequential, 1);
  ASSERT_EQ(seq.engine_used, mc::EngineKind::kSequential);
  ASSERT_TRUE(seq.exhausted);

  const auto base = run_liveness(cell, mc::EngineKind::kParallel, 1);
  for (int threads : {1, 2, 4}) {
    const auto par = run_liveness(cell, mc::EngineKind::kParallel, threads);
    ASSERT_EQ(par.engine_used, mc::EngineKind::kParallel);
    EXPECT_EQ(par.stats.threads, threads);
    EXPECT_EQ(par.holds, seq.holds) << "threads=" << threads << ": " << par.verdict_text
                                    << " vs " << seq.verdict_text;
    EXPECT_EQ(par.verdict_text, seq.verdict_text) << "threads=" << threads;
    EXPECT_EQ(par.exhausted, seq.exhausted) << "threads=" << threads;
    // Bit-identical lasso (trace AND loop entry) at every thread count.
    EXPECT_EQ(par.trace, base.trace) << "threads=" << threads;
    EXPECT_EQ(par.loop_start, base.loop_start) << "threads=" << threads;
    EXPECT_EQ(par.stats.trim_rounds, base.stats.trim_rounds) << "threads=" << threads;
    EXPECT_EQ(par.stats.residue_states, base.stats.residue_states) << "threads=" << threads;
    if (seq.holds && cell.lemma == Lemma::kLiveness) {
      // Exhaustive F(goal) holds-runs sweep the same goal-free region once:
      // state, transition and hash counts match the sequential DFS exactly.
      EXPECT_EQ(par.stats.states, seq.stats.states) << "threads=" << threads;
      EXPECT_EQ(par.stats.transitions, seq.stats.transitions) << "threads=" << threads;
      EXPECT_EQ(par.stats.hash_ops, seq.stats.hash_ops) << "threads=" << threads;
    }
  }

  const auto sym = run_liveness(cell, mc::EngineKind::kSymbolic, 1);
  ASSERT_EQ(sym.engine_used, mc::EngineKind::kSymbolic);
  EXPECT_EQ(sym.holds, seq.holds) << sym.verdict_text << " vs " << seq.verdict_text;
  EXPECT_EQ(sym.verdict_text, seq.verdict_text);
  EXPECT_EQ(sym.stats.hash_ops, 0u);  // BDD membership, no hashing
  if (!seq.holds) {
    EXPECT_GT(sym.stats.bdd_iterations, 0);
  }
  if (seq.holds && cell.lemma == Lemma::kLiveness) {
    EXPECT_EQ(sym.stats.states, seq.stats.states);
    EXPECT_EQ(sym.stats.transitions, seq.stats.transitions);
  }
}

TEST_P(EngineEquivalenceLiveness, CounterexamplesReplayThroughTheModel) {
  const LivenessCell cell = GetParam();
  const tta::ClusterConfig cfg = prepare_config(liveness_cell_config(cell), cell.lemma);
  const tta::Cluster cluster(cfg);
  auto goal = [&](const tta::Cluster::State& s) {
    return tta::all_correct_active(cfg, cluster.unpack(s));
  };

  const auto seq = run_liveness(cell, mc::EngineKind::kSequential, 1);
  if (seq.holds) {
    GTEST_SKIP() << "holds-cell: no counterexample to replay";
  }
  std::string why;
  // Seq AG AF lassos are rooted at an arbitrary reachable state; everything
  // else stems from an initial state.
  ASSERT_TRUE(mc::validate_lasso(cluster, goal, seq.trace, seq.loop_start,
                                 /*require_initial_root=*/cell.lemma == Lemma::kLiveness,
                                 &why))
      << "seq: " << why;
  for (int threads : {1, 2, 4}) {
    const auto par = run_liveness(cell, mc::EngineKind::kParallel, threads);
    ASSERT_TRUE(mc::validate_lasso(cluster, goal, par.trace, par.loop_start,
                                   /*require_initial_root=*/true, &why))
        << "par threads=" << threads << ": " << why;
  }
  const auto sym = run_liveness(cell, mc::EngineKind::kSymbolic, 1);
  ASSERT_TRUE(mc::validate_lasso(cluster, goal, sym.trace, sym.loop_start,
                                 /*require_initial_root=*/true, &why))
      << "sym: " << why;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineEquivalenceLiveness,
    ::testing::Values(LivenessCell{3, 1, Lemma::kLiveness}, LivenessCell{3, 2, Lemma::kLiveness},
                      LivenessCell{3, 3, Lemma::kLiveness}, LivenessCell{3, 0, Lemma::kLiveness},
                      LivenessCell{4, 0, Lemma::kLiveness},
                      LivenessCell{3, 2, Lemma::kReintegration},
                      LivenessCell{3, 0, Lemma::kReintegration}),
    liveness_cell_name);

// ---------------------------------------------------------------------------
// Store equivalence: swapping the locked store for the lock-free one must be
// observationally invisible — verdicts, state/transition counts, frontier
// profiles, hash-op counts and byte-identical traces at every thread count,
// on safety, a VIOLATED cell and OWCTY liveness alike. Suite name keeps the
// "EngineEquivalence" stem so the TSan CI job picks it up.
// ---------------------------------------------------------------------------

VerificationResult run_store(const GridCell& cell, mc::EngineKind engine, int threads,
                             mc::StoreKind store, std::size_t budget_bytes = 0) {
  VerifyOptions opts;
  opts.engine = engine;
  opts.threads = threads;
  opts.store.kind = store;
  opts.store.mem_budget_bytes = budget_bytes;
  return verify(cell_config(cell), cell.lemma, opts);
}

class EngineEquivalenceStore : public ::testing::TestWithParam<GridCell> {};

TEST_P(EngineEquivalenceStore, LockFreeIsObservationallyIdenticalToLocked) {
  const auto base =
      run_store(GetParam(), mc::EngineKind::kParallel, 1, mc::StoreKind::kShardedLocked);
  for (int threads : {1, 2, 4}) {
    const auto locked =
        run_store(GetParam(), mc::EngineKind::kParallel, threads, mc::StoreKind::kShardedLocked);
    const auto lockfree =
        run_store(GetParam(), mc::EngineKind::kParallel, threads, mc::StoreKind::kLockFree);
    EXPECT_EQ(lockfree.holds, base.holds)
        << "threads=" << threads << ": " << lockfree.verdict_text;
    EXPECT_EQ(lockfree.verdict_text, locked.verdict_text) << "threads=" << threads;
    EXPECT_EQ(lockfree.exhausted, locked.exhausted) << "threads=" << threads;
    EXPECT_EQ(lockfree.stats.states, locked.stats.states) << "threads=" << threads;
    EXPECT_EQ(lockfree.stats.transitions, locked.stats.transitions) << "threads=" << threads;
    EXPECT_EQ(lockfree.stats.frontier_sizes, locked.stats.frontier_sizes)
        << "threads=" << threads;
    // Hash-once survives the store swap: one hash per considered state.
    EXPECT_EQ(lockfree.stats.hash_ops, locked.stats.hash_ops) << "threads=" << threads;
    // Not merely equivalent: the identical counterexample, byte for byte,
    // regardless of store backend and thread count.
    EXPECT_EQ(lockfree.trace, base.trace) << "threads=" << threads;
    EXPECT_EQ(lockfree.loop_start, base.loop_start) << "threads=" << threads;
  }
}

TEST_P(EngineEquivalenceStore, FingerprintOnlyIsObservationallyIdenticalToLocked) {
  // The fingerprint-only store discards sealed page bodies and answers
  // duplicate probes from fingerprints plus re-expansion — verdicts, counts
  // and traces must still be byte-identical to the locked oracle at every
  // thread count. The liveness cell exercises the documented degradation
  // (OWCTY random-accesses every body, so lockfree-fp runs as plain
  // lockfree there), which must be equally invisible.
  const auto base =
      run_store(GetParam(), mc::EngineKind::kParallel, 1, mc::StoreKind::kShardedLocked);
  for (int threads : {1, 2, 4}) {
    const auto locked =
        run_store(GetParam(), mc::EngineKind::kParallel, threads, mc::StoreKind::kShardedLocked);
    const auto fp =
        run_store(GetParam(), mc::EngineKind::kParallel, threads, mc::StoreKind::kLockFreeFp);
    EXPECT_EQ(fp.holds, base.holds) << "threads=" << threads << ": " << fp.verdict_text;
    EXPECT_EQ(fp.verdict_text, locked.verdict_text) << "threads=" << threads;
    EXPECT_EQ(fp.exhausted, locked.exhausted) << "threads=" << threads;
    EXPECT_EQ(fp.stats.states, locked.stats.states) << "threads=" << threads;
    EXPECT_EQ(fp.stats.transitions, locked.stats.transitions) << "threads=" << threads;
    EXPECT_EQ(fp.stats.frontier_sizes, locked.stats.frontier_sizes) << "threads=" << threads;
    EXPECT_EQ(fp.stats.hash_ops, locked.stats.hash_ops) << "threads=" << threads;
    EXPECT_EQ(fp.trace, base.trace) << "threads=" << threads;
    EXPECT_EQ(fp.loop_start, base.loop_start) << "threads=" << threads;
  }
}

// Safety holds-cell, a VIOLATED hub-agreement cell (trace equality matters
// most there) and an OWCTY liveness cell.
INSTANTIATE_TEST_SUITE_P(Grid, EngineEquivalenceStore,
                         ::testing::Values(GridCell{3, 2, true, Lemma::kSafety},
                                           GridCell{3, 3, true, Lemma::kHubAgreement},
                                           GridCell{3, 2, true, Lemma::kLiveness}),
                         cell_name);

// ---------------------------------------------------------------------------
// Proof-engine equivalence: the SAT-based unbounded engines (kind = k-
// induction with the reachability-sweep completeness threshold, ic3 =
// IC3/PDR) must agree with the sequential BFS verdict. kind carries the
// full invariant grid; ic3 — whose frames over-approximate the reachable
// set, so full-init-window cells blow past test time — gets dedicated
// reduced cells below. On holds-cells agreement is not enough: the verdict
// must be PROVED@k — an unbounded guarantee, not a failed refutation. On
// VIOLATED cells the decoded cluster counterexample must replay through the
// raw model edge by edge and end in a violating state; for kind it is
// additionally BFS-minimal (the base instance refutes at the first
// violating depth), matching the explicit trace length exactly.
// ---------------------------------------------------------------------------

bool holds_invariant(const tta::ClusterConfig& cfg, const tta::ClusterState& c, Lemma lemma) {
  switch (lemma) {
    case Lemma::kSafety: return tta::holds_safety(cfg, c);
    case Lemma::kTimeliness:
    case Lemma::kSafety2: return tta::holds_timeliness(cfg, c);
    case Lemma::kHubAgreement: return tta::holds_hub_agreement(cfg, c);
    case Lemma::kLiveness:
    case Lemma::kReintegration: break;
  }
  ADD_FAILURE() << "not an invariant lemma";
  return true;
}

/// Replays a proof-engine counterexample through the raw cluster: rooted in
/// an initial state, connected edge by edge, ending in a violation.
void expect_valid_counterexample(const tta::ClusterConfig& pcfg,
                                 const std::vector<tta::Cluster::State>& trace, Lemma lemma,
                                 const std::string& label) {
  const tta::Cluster cluster(pcfg);
  ASSERT_FALSE(trace.empty()) << label;
  bool initial = false;
  cluster.initial_states([&](const tta::Cluster::State& s) { initial |= s == trace.front(); });
  EXPECT_TRUE(initial) << label << ": trace must start in an initial state";
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    bool connected = false;
    cluster.successors(trace[i],
                       [&](const tta::Cluster::State& s) { connected |= s == trace[i + 1]; });
    EXPECT_TRUE(connected) << label << ": step " << i << " does not replay";
  }
  EXPECT_FALSE(holds_invariant(pcfg, cluster.unpack(trace.back()), lemma))
      << label << ": final state must violate the lemma";
}

void expect_proof_agreement(const GridCell& cell, mc::EngineKind engine,
                            bool minimal_counterexample) {
  const auto seq = run(cell, mc::EngineKind::kSequential, 1);
  ASSERT_TRUE(seq.exhausted);
  const auto proof = run(cell, engine, 1);
  const std::string label = mc::to_string(engine);
  ASSERT_EQ(proof.engine_used, engine);
  EXPECT_EQ(proof.holds, seq.holds)
      << label << ": " << proof.verdict_text << " vs " << seq.verdict_text;
  EXPECT_TRUE(proof.exhausted) << label << ": " << proof.verdict_text;
  EXPECT_GT(proof.stats.solver_calls, 0u) << label;
  if (seq.holds) {
    EXPECT_EQ(proof.verdict_text.rfind("PROVED@", 0), 0u)
        << label << ": holds-cells need a proof, got " << proof.verdict_text;
  } else {
    if (minimal_counterexample) {
      // Counterexamples are BFS-minimal in both engines, hence equal length.
      EXPECT_EQ(proof.trace.size(), seq.trace.size()) << label;
    }
    expect_valid_counterexample(prepare_config(cell_config(cell), cell.lemma), proof.trace,
                                cell.lemma, label);
  }
}

class ProofEngineGrid : public ::testing::TestWithParam<GridCell> {};

TEST_P(ProofEngineGrid, KindAgreesWithSequentialAndProvesHoldsCells) {
  expect_proof_agreement(GetParam(), mc::EngineKind::kKInduction,
                         /*minimal_counterexample=*/true);
}

// The invariant cells of the seq-vs-par grid above (the liveness lemmas are
// out of scope for the proof engines by construction), minus the n=4
// hub-agreement cell: its refutation sits at star-IR depth 26 and costs ~3
// minutes of SAT probing alone; deep hub-agreement refutation is covered by
// the n=3 cells.
INSTANTIATE_TEST_SUITE_P(
    Grid, ProofEngineGrid,
    ::testing::Values(GridCell{3, 1, true, Lemma::kSafety}, GridCell{3, 2, true, Lemma::kSafety},
                      GridCell{3, 3, true, Lemma::kSafety}, GridCell{3, 5, true, Lemma::kSafety},
                      GridCell{3, 6, true, Lemma::kSafety}, GridCell{3, 6, false, Lemma::kSafety},
                      GridCell{4, 6, true, Lemma::kSafety}, GridCell{4, 3, false, Lemma::kSafety},
                      GridCell{3, 2, true, Lemma::kTimeliness},
                      GridCell{3, 6, true, Lemma::kTimeliness},
                      GridCell{4, 6, true, Lemma::kTimeliness},
                      GridCell{3, 2, true, Lemma::kHubAgreement},
                      GridCell{3, 3, true, Lemma::kHubAgreement},
                      GridCell{3, 6, true, Lemma::kHubAgreement}),
    cell_name);

// IC3 blocks one generalized cube per obligation, and on this model the
// predecessor space of an over-approximated frame is the full valuation
// space — full-init-window cells need tens of thousands of solver calls and
// run far past test budgets. These two reduced cells keep the whole IC3
// path honest end to end instead: one it must PROVE (frame convergence,
// relative-induction generalization, clause propagation) and one it must
// REFUTE with a replayable obligation-chain counterexample.
TEST(Ic3Engine, ProvesReducedWindowSafetyCell) {
  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.faulty_node = 0;
  cfg.fault_degree = 1;
  cfg.init_window = 2;
  cfg.hub_init_window = 2;

  VerifyOptions seq_opts;
  seq_opts.engine = mc::EngineKind::kSequential;
  const auto seq = verify(cfg, Lemma::kSafety, seq_opts);
  ASSERT_TRUE(seq.exhausted);
  ASSERT_TRUE(seq.holds);

  VerifyOptions opts;
  opts.engine = mc::EngineKind::kIc3;
  const auto proof = verify(cfg, Lemma::kSafety, opts);
  EXPECT_TRUE(proof.holds) << proof.verdict_text;
  EXPECT_EQ(proof.verdict_text.rfind("PROVED@", 0), 0u) << proof.verdict_text;
  // The proof must come from the real machinery: a converged frame after
  // a non-trivial obligation workload, with learned clauses carried across
  // the incremental solver calls.
  EXPECT_GT(proof.stats.frames, 2u);
  EXPECT_GT(proof.stats.proof_obligations, 0u);
  EXPECT_GT(proof.stats.clauses_reused, 0u);
}

TEST(Ic3Engine, RefutesTightTimelinessBoundWithReplayableTrace) {
  // Tightening the timeliness bound to 2 slots plants a violation a few
  // levels deep — reachable for IC3's obligation queue in seconds.
  GridCell cell{3, 1, true, Lemma::kTimeliness};
  tta::ClusterConfig cfg = cell_config(cell);
  cfg.timeliness_bound = 2;

  VerifyOptions seq_opts;
  seq_opts.engine = mc::EngineKind::kSequential;
  const auto seq = verify(cfg, Lemma::kTimeliness, seq_opts);
  ASSERT_TRUE(seq.exhausted);
  ASSERT_FALSE(seq.holds);

  VerifyOptions opts;
  opts.engine = mc::EngineKind::kIc3;
  const auto proof = verify(cfg, Lemma::kTimeliness, opts);
  EXPECT_FALSE(proof.holds) << proof.verdict_text;
  EXPECT_GT(proof.stats.proof_obligations, 0u);
  // IC3 obligation chains are real paths but not necessarily shortest ones,
  // so replay validity (not length) is the trace contract.
  expect_valid_counterexample(prepare_config(cfg, Lemma::kTimeliness), proof.trace,
                              Lemma::kTimeliness, "ic3");
}

TEST(ProofEngineHub, Safety2FaultyHubProvedByKind) {
  // The §5.2 faulty-hub lemma (fig. 6's Safety_2 row): the proof engine
  // must PROVE the n=3 cell the explicit engines verify by exhaustion.
  // (ic3 cannot close the faulty-hub cell in test time — the hub's free
  // choices widen every frame — so kind carries it; the reduced cells
  // above keep ic3's proof path covered.)
  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.faulty_hub = 0;
  cfg.init_window = 3;
  cfg.hub_init_window = 1;
  cfg.timeliness_bound = 8 * cfg.n;

  VerifyOptions seq_opts;
  seq_opts.engine = mc::EngineKind::kSequential;
  const auto seq = verify(cfg, Lemma::kSafety2, seq_opts);
  ASSERT_TRUE(seq.exhausted);
  VerifyOptions opts;
  opts.engine = mc::EngineKind::kKInduction;
  const auto proof = verify(cfg, Lemma::kSafety2, opts);
  EXPECT_EQ(proof.holds, seq.holds) << proof.verdict_text << " vs " << seq.verdict_text;
  ASSERT_TRUE(seq.holds);
  EXPECT_EQ(proof.verdict_text.rfind("PROVED@", 0), 0u) << proof.verdict_text;
}

TEST(ProofEngine, RejectsLivenessLemmas) {
  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.faulty_node = 0;
  cfg.fault_degree = 1;
  cfg.init_window = 3;
  cfg.hub_init_window = 3;
  VerifyOptions opts;
  opts.engine = mc::EngineKind::kKInduction;
  EXPECT_THROW((void)verify(cfg, Lemma::kLiveness, opts), std::invalid_argument);
}

TEST(ProofEngine, RejectsReducedRuns) {
  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.faulty_node = 0;
  cfg.fault_degree = 1;
  cfg.init_window = 3;
  cfg.hub_init_window = 3;
  VerifyOptions opts;
  opts.engine = mc::EngineKind::kIc3;
  opts.reduction = mc::ReductionKind::kSymmetry;
  EXPECT_THROW((void)verify(cfg, Lemma::kSafety, opts), std::invalid_argument);
}

#if TT_LFSIM_HAS_SPILL
TEST(EngineEquivalenceStore, BeyondRamRunMatchesInRamCountsExactly) {
  // A 1-byte memory budget forces every sealed page out of core (the n=4
  // cell fills six 1024-state pages in the sequential engine's single
  // shard). The beyond-RAM run must reach the same verdict with the same
  // exact counts as the unconstrained one — spilling is a memory tier, not
  // an approximation.
  const GridCell cell{4, 3, false, Lemma::kSafety};
  const auto in_ram =
      run_store(cell, mc::EngineKind::kSequential, 1, mc::StoreKind::kLockFree);
  const auto spilled =
      run_store(cell, mc::EngineKind::kSequential, 1, mc::StoreKind::kLockFree, /*budget=*/1);
  ASSERT_TRUE(in_ram.exhausted);
  EXPECT_EQ(spilled.holds, in_ram.holds);
  EXPECT_EQ(spilled.exhausted, in_ram.exhausted);
  EXPECT_EQ(spilled.stats.states, in_ram.stats.states);
  EXPECT_EQ(spilled.stats.transitions, in_ram.stats.transitions);
  EXPECT_EQ(spilled.stats.frontier_sizes, in_ram.stats.frontier_sizes);
  EXPECT_EQ(spilled.stats.hash_ops, in_ram.stats.hash_ops);
  EXPECT_GT(spilled.stats.pages_compressed, 0u);
  EXPECT_GT(spilled.stats.spill_bytes, 0u) << "1-byte budget must force a spill";
  EXPECT_EQ(in_ram.stats.spill_bytes, 0u) << "unconstrained run must stay in RAM";
}

TEST(EngineEquivalenceStore, AllThreeStoreModesAgreeOnFig6N6BeyondRam) {
  // The acceptance cell: fig. 6 at n=6 (~202k states) under a 1-byte memory
  // budget. The locked in-RAM run is the oracle; lockfree pushes every
  // sealed page through the write-behind pipeline and evicts it; lockfree-fp
  // discards sealed bodies outright and re-derives dropped states on demand.
  // All three must agree bit for bit — out-of-core is a memory tier, never
  // an approximation.
  const GridCell cell{6, 6, true, Lemma::kSafety};
  const auto locked =
      run_store(cell, mc::EngineKind::kParallel, 4, mc::StoreKind::kShardedLocked);
  ASSERT_TRUE(locked.exhausted);
  ASSERT_TRUE(locked.holds) << locked.verdict_text;
  const auto spilled =
      run_store(cell, mc::EngineKind::kParallel, 4, mc::StoreKind::kLockFree, /*budget=*/1);
  const auto fp =
      run_store(cell, mc::EngineKind::kParallel, 4, mc::StoreKind::kLockFreeFp, /*budget=*/1);
  for (const auto* r : {&spilled, &fp}) {
    EXPECT_EQ(r->holds, locked.holds) << r->verdict_text;
    EXPECT_EQ(r->exhausted, locked.exhausted);
    EXPECT_EQ(r->stats.states, locked.stats.states);
    EXPECT_EQ(r->stats.transitions, locked.stats.transitions);
    EXPECT_EQ(r->stats.frontier_sizes, locked.stats.frontier_sizes);
    EXPECT_EQ(r->stats.hash_ops, locked.stats.hash_ops);
  }
  EXPECT_GT(spilled.stats.spill_async_pages, 0u) << "write-behind must carry the spill";
  EXPECT_GT(spilled.stats.spill_bytes, 0u);
  EXPECT_GT(fp.stats.reexpansions, 0u)
      << "dropped bodies must be re-derived by replay, not assumed distinct";
}

TEST(EngineEquivalenceStore, WriterDeviceFullStarBurstsOutOfTheWorkerPool) {
  // An injected ENOSPC on the spill I/O thread must surface as a
  // StateCapacityError thrown from the coordinator: the failing maintain
  // records the error, workers park at the level barrier, the pool joins,
  // and the coordinator rethrows — never std::terminate, never a wedged
  // barrier, never a silently truncated state space.
  ::setenv("TTSTART_SPILL_FAIL_AFTER", "1", 1);
  const GridCell cell{6, 6, true, Lemma::kSafety};
  EXPECT_THROW(
      (void)run_store(cell, mc::EngineKind::kParallel, 4, mc::StoreKind::kLockFree, /*budget=*/1),
      StateCapacityError);
  ::unsetenv("TTSTART_SPILL_FAIL_AFTER");
}

TEST(EngineEquivalenceStore, NarrowFingerprintCollisionsStayExact) {
  // TTSTART_FP_BITS=16 masks every fingerprint down to 16 bits, so with
  // ~202k states genuine collisions are guaranteed in every shard. The
  // collision path — pin both bodies, disambiguate later duplicates by
  // parent-chain replay — must keep the verdict and every count exactly
  // equal to the locked oracle: narrow fingerprints degrade to slower,
  // never to wrong.
  const GridCell cell{6, 6, true, Lemma::kSafety};
  const auto locked =
      run_store(cell, mc::EngineKind::kParallel, 4, mc::StoreKind::kShardedLocked);
  ASSERT_TRUE(locked.holds) << locked.verdict_text;
  ::setenv("TTSTART_FP_BITS", "16", 1);
  const auto fp_seq =
      run_store(cell, mc::EngineKind::kSequential, 1, mc::StoreKind::kLockFreeFp);
  const auto fp_par =
      run_store(cell, mc::EngineKind::kParallel, 4, mc::StoreKind::kLockFreeFp);
  ::unsetenv("TTSTART_FP_BITS");
  for (const auto* r : {&fp_seq, &fp_par}) {
    EXPECT_EQ(r->holds, locked.holds) << r->verdict_text;
    EXPECT_EQ(r->exhausted, locked.exhausted);
    EXPECT_EQ(r->stats.states, locked.stats.states);
    EXPECT_EQ(r->stats.transitions, locked.stats.transitions);
    EXPECT_EQ(r->stats.frontier_sizes, locked.stats.frontier_sizes);
    EXPECT_GT(r->stats.fp_collisions, 0u) << "16-bit masks must collide at this scale";
    EXPECT_GT(r->stats.reexpansions, 0u);
  }
}
#endif  // TT_LFSIM_HAS_SPILL

}  // namespace
}  // namespace tt::core
