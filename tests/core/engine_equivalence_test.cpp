// Determinism and equivalence suite for the engine layer: for every lemma x
// configuration in the tier-1 grid, the parallel frontier engine (1, 2 and 4
// threads) and the sequential BFS engine must agree on the verdict and
// produce equal-length (BFS-minimal) counterexamples; parallel runs must be
// bit-identical across thread counts, state counts included. This is the
// regression net behind the "identical verdicts/traces regardless of thread
// count" guarantee documented in DESIGN.md.
#include <gtest/gtest.h>

#include <string>

#include "core/verifier.hpp"

namespace tt::core {
namespace {

struct GridCell {
  int n;
  int degree;
  bool feedback;
  Lemma lemma;
};

std::string cell_name(const ::testing::TestParamInfo<GridCell>& info) {
  return std::string(to_string(info.param.lemma)) + "_n" + std::to_string(info.param.n) +
         "_deg" + std::to_string(info.param.degree) +
         (info.param.feedback ? "_fb" : "_nofb");
}

tta::ClusterConfig cell_config(const GridCell& cell) {
  tta::ClusterConfig cfg;
  cfg.n = cell.n;
  cfg.faulty_node = 0;
  cfg.fault_degree = cell.degree;
  cfg.feedback = cell.feedback;
  cfg.init_window = 3;
  cfg.hub_init_window = 3;
  if (cell.lemma == Lemma::kTimeliness) cfg.timeliness_bound = 10 * cell.n;
  return cfg;
}

VerificationResult run(const GridCell& cell, mc::EngineKind engine, int threads) {
  VerifyOptions opts;
  opts.engine = engine;
  opts.threads = threads;
  return verify(cell_config(cell), cell.lemma, opts);
}

class EngineEquivalenceGrid : public ::testing::TestWithParam<GridCell> {};

TEST_P(EngineEquivalenceGrid, ParallelAgreesWithSequentialAtEveryThreadCount) {
  const auto seq = run(GetParam(), mc::EngineKind::kSequential, 1);
  ASSERT_EQ(seq.engine_used, mc::EngineKind::kSequential);

  for (int threads : {1, 2, 4}) {
    const auto par = run(GetParam(), mc::EngineKind::kParallel, threads);
    ASSERT_EQ(par.engine_used, mc::EngineKind::kParallel);
    EXPECT_EQ(par.stats.threads, threads);

    EXPECT_EQ(par.holds, seq.holds) << "threads=" << threads << ": " << par.verdict_text
                                    << " vs " << seq.verdict_text;
    EXPECT_EQ(par.exhausted, seq.exhausted) << "threads=" << threads;
    // Counterexamples are BFS-minimal in both engines, hence equal length.
    EXPECT_EQ(par.trace.size(), seq.trace.size()) << "threads=" << threads;
    if (seq.holds) {
      // Exhaustive agreeing runs visit the same reachable set.
      EXPECT_EQ(par.stats.states, seq.stats.states) << "threads=" << threads;
      EXPECT_EQ(par.stats.transitions, seq.stats.transitions) << "threads=" << threads;
      EXPECT_EQ(par.stats.depth, seq.stats.depth) << "threads=" << threads;
      EXPECT_EQ(par.stats.frontier_sizes, seq.stats.frontier_sizes);
    }
  }
}

TEST_P(EngineEquivalenceGrid, ParallelIsDeterministicAcrossThreadCounts) {
  const auto base = run(GetParam(), mc::EngineKind::kParallel, 1);
  for (int threads : {2, 4}) {
    const auto r = run(GetParam(), mc::EngineKind::kParallel, threads);
    EXPECT_EQ(r.holds, base.holds) << "threads=" << threads;
    EXPECT_EQ(r.stats.states, base.stats.states) << "threads=" << threads;
    EXPECT_EQ(r.stats.transitions, base.stats.transitions) << "threads=" << threads;
    EXPECT_EQ(r.stats.frontier_sizes, base.stats.frontier_sizes) << "threads=" << threads;
    // Not merely equal length: the identical counterexample trace.
    EXPECT_EQ(r.trace, base.trace) << "threads=" << threads;
  }
}

// The tier-1 grid of lemma_sweep_test.cpp, crossed with every invariant
// lemma (liveness lemmas are lasso-based and always sequential). The
// hub-agreement cells at degree >= 3 are VIOLATED cells, so the suite covers
// counterexample agreement, not just holds-verdicts.
INSTANTIATE_TEST_SUITE_P(
    Grid, EngineEquivalenceGrid,
    ::testing::Values(GridCell{3, 1, true, Lemma::kSafety}, GridCell{3, 2, true, Lemma::kSafety},
                      GridCell{3, 3, true, Lemma::kSafety}, GridCell{3, 5, true, Lemma::kSafety},
                      GridCell{3, 6, true, Lemma::kSafety}, GridCell{3, 6, false, Lemma::kSafety},
                      GridCell{4, 6, true, Lemma::kSafety}, GridCell{4, 3, false, Lemma::kSafety},
                      GridCell{3, 2, true, Lemma::kTimeliness},
                      GridCell{3, 6, true, Lemma::kTimeliness},
                      GridCell{4, 6, true, Lemma::kTimeliness},
                      GridCell{3, 2, true, Lemma::kHubAgreement},
                      GridCell{3, 3, true, Lemma::kHubAgreement},
                      GridCell{3, 6, true, Lemma::kHubAgreement},
                      GridCell{4, 6, true, Lemma::kHubAgreement}),
    cell_name);

TEST(EngineEquivalenceHub, Safety2FaultyHubGrid) {
  for (int n : {3, 4}) {
    tta::ClusterConfig cfg;
    cfg.n = n;
    cfg.faulty_hub = 0;
    cfg.init_window = 3;
    cfg.hub_init_window = 1;
    cfg.timeliness_bound = 8 * n;

    VerifyOptions seq_opts;
    seq_opts.engine = mc::EngineKind::kSequential;
    const auto seq = verify(cfg, Lemma::kSafety2, seq_opts);
    for (int threads : {1, 2, 4}) {
      VerifyOptions par_opts;
      par_opts.engine = mc::EngineKind::kParallel;
      par_opts.threads = threads;
      const auto par = verify(cfg, Lemma::kSafety2, par_opts);
      EXPECT_EQ(par.holds, seq.holds) << "n=" << n << " threads=" << threads;
      EXPECT_EQ(par.trace.size(), seq.trace.size());
      if (seq.holds) {
        EXPECT_EQ(par.stats.states, seq.stats.states);
      }
    }
  }
}

TEST(EngineEquivalence, LivenessAlwaysRunsSequential) {
  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.faulty_node = 0;
  cfg.fault_degree = 2;
  cfg.init_window = 3;
  cfg.hub_init_window = 3;
  VerifyOptions opts;
  opts.engine = mc::EngineKind::kParallel;  // request is overridden for lasso DFS
  const auto r = verify(cfg, Lemma::kLiveness, opts);
  EXPECT_EQ(r.engine_used, mc::EngineKind::kSequential);
  EXPECT_TRUE(r.holds) << r.verdict_text;
}

TEST(EngineEquivalence, AutoPicksParallelForInvariantsSequentialForLiveness) {
  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.faulty_node = 0;
  cfg.fault_degree = 1;
  cfg.init_window = 3;
  cfg.hub_init_window = 3;
  EXPECT_EQ(verify(cfg, Lemma::kSafety).engine_used, mc::EngineKind::kParallel);
  EXPECT_EQ(verify(cfg, Lemma::kLiveness).engine_used, mc::EngineKind::kSequential);
}

}  // namespace
}  // namespace tt::core
