// Tests for the restart/reintegration extension (paper §2.1: "the restart
// problem is to reestablish synchronization after transient faults").
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "mc/reachability.hpp"
#include "tta/properties.hpp"

namespace tt::core {
namespace {

tta::ClusterConfig restart_cfg() {
  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.init_window = 2;
  cfg.hub_init_window = 2;
  cfg.transient_restarts = 1;
  return cfg;
}

TEST(Restart, SafetyHoldsAcrossTransientRestarts) {
  auto r = verify(restart_cfg(), Lemma::kSafety);
  EXPECT_TRUE(r.holds) << r.verdict_text;
  EXPECT_TRUE(r.exhausted);
}

TEST(Restart, ReintegrationHoldsFaultFree) {
  // AG AF(all correct active): after the transient fault knocks a node back
  // to INIT, the running set always pulls it back in.
  auto r = verify(restart_cfg(), Lemma::kReintegration);
  EXPECT_TRUE(r.holds) << r.verdict_text;
  EXPECT_TRUE(r.exhausted);
}

TEST(Restart, ReintegrationEqualsLivenessWithoutBudget) {
  // With no restart budget the reachable goal-free structure is the same,
  // so both lemmas must agree (and hold).
  auto cfg = restart_cfg();
  cfg.transient_restarts = 0;
  EXPECT_TRUE(verify(cfg, Lemma::kLiveness).holds);
  EXPECT_TRUE(verify(cfg, Lemma::kReintegration).holds);
}

TEST(Restart, StateSpaceGrowsWithBudget) {
  auto cfg = restart_cfg();
  cfg.transient_restarts = 0;
  const auto without = verify(cfg, Lemma::kSafety);
  cfg.transient_restarts = 1;
  const auto with = verify(cfg, Lemma::kSafety);
  EXPECT_GT(with.stats.states, without.stats.states);
}

TEST(Restart, BudgetIsEnforcedInTheModel) {
  // Walk the full reachable set and check restarts_used never exceeds the
  // configured budget.
  auto cfg = prepare_config(restart_cfg(), Lemma::kSafety);
  const tta::Cluster cluster(cfg);
  auto r = verify(cfg, Lemma::kSafety);
  ASSERT_TRUE(r.holds);
  // Indirect check via a dedicated invariant run.
  auto budget_r = mc::check_invariant(cluster, [&](const tta::Cluster::State& s) {
    return cluster.unpack(s).restarts_used <= cfg.transient_restarts;
  });
  EXPECT_EQ(budget_r.verdict, mc::Verdict::kHolds);
}

TEST(Restart, ReintegrationWithFaultyNodeLowDegree) {
  auto cfg = restart_cfg();
  cfg.faulty_node = 0;
  cfg.fault_degree = 2;
  auto r = verify(cfg, Lemma::kReintegration);
  EXPECT_TRUE(r.holds) << r.verdict_text;
}

}  // namespace
}  // namespace tt::core
