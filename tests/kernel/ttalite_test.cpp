#include "kernel/ttalite.hpp"

#include <gtest/gtest.h>

#include "kernel/packed_system.hpp"
#include "mc/liveness.hpp"
#include "mc/reachability.hpp"

namespace tt::kernel {
namespace {

TtaLiteConfig cfg(int n, int faulty = -1, int degree = 1) {
  TtaLiteConfig c;
  c.n = n;
  c.init_window = 2;
  c.faulty_node = faulty;
  c.fault_degree = degree;
  return c;
}

TEST(TtaLite, FaultFreeSafetyHolds) {
  TtaLite model(cfg(3));
  const PackedSystem ps(model.system());
  auto r = mc::check_invariant(ps, [&](const PackedSystem::State& s) {
    return model.safety(ps.unpack(s));
  });
  EXPECT_EQ(r.verdict, mc::Verdict::kHolds);
  EXPECT_GT(r.stats.states, 50u);
}

TEST(TtaLite, FaultFreeLivenessHolds) {
  TtaLite model(cfg(3));
  const PackedSystem ps(model.system());
  auto r = mc::check_eventually(ps, [&](const PackedSystem::State& s) {
    return model.all_correct_active(ps.unpack(s));
  });
  EXPECT_EQ(r.verdict, mc::LivenessVerdict::kHolds) << to_string(r.verdict);
}

class TtaLiteFaulty : public ::testing::TestWithParam<int> {};

TEST_P(TtaLiteFaulty, SafetyOnlySurvivesFailSilence) {
  // The original bus-topology algorithm has neither guardians nor the
  // big-bang: it tolerates a fail-silent node (degree 1) but a babbling node
  // that emits frames (degrees 2-3) splits the cluster into inconsistent
  // synchronization groups. This is precisely the motivation the paper gives
  // for the star topology — the full tta:: model holds safety at fault
  // degree 6 where this one already fails at degree 2.
  const int degree = GetParam();
  TtaLite model(cfg(3, /*faulty=*/0, degree));
  const PackedSystem ps(model.system());
  auto r = mc::check_invariant(ps, [&](const PackedSystem::State& s) {
    return model.safety(ps.unpack(s));
  });
  if (degree == 1) {
    EXPECT_EQ(r.verdict, mc::Verdict::kHolds);
  } else {
    EXPECT_EQ(r.verdict, mc::Verdict::kViolated);
    EXPECT_FALSE(r.trace.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, TtaLiteFaulty, ::testing::Values(1, 2, 3));

TEST(TtaLite, FailSilentNodeDoesNotBlockLiveness) {
  TtaLite model(cfg(3, /*faulty=*/0, /*degree=*/1));
  const PackedSystem ps(model.system());
  auto r = mc::check_eventually(ps, [&](const PackedSystem::State& s) {
    return model.all_correct_active(ps.unpack(s));
  });
  EXPECT_EQ(r.verdict, mc::LivenessVerdict::kHolds) << to_string(r.verdict);
}

TEST(TtaLite, SafetyExprMatchesPredicate) {
  TtaLite model(cfg(3, 0, 2));
  const ExprId safety = model.safety_expr();
  const PackedSystem ps(model.system());
  // The IR-level formula and the C++ predicate must agree on every
  // reachable state (they feed different engines).
  auto r = mc::check_invariant(ps, [&](const PackedSystem::State& s) {
    const auto v = ps.unpack(s);
    return (model.system().exprs().eval(safety, v) != 0) == model.safety(v);
  });
  EXPECT_EQ(r.verdict, mc::Verdict::kHolds);
}

TEST(TtaLite, ReachableStateCountScale) {
  // The paper's preliminary 4-node model had 41,322 reachable states; our
  // lite rebuild at the scaled wake-up window sits in the same order of
  // magnitude (documented in EXPERIMENTS.md).
  TtaLite model(cfg(4, 0, 3));
  const PackedSystem ps(model.system());
  auto stats = mc::count_reachable(ps);
  EXPECT_GT(stats.states, 1000u);
  EXPECT_LT(stats.states, 2000000u);
}

TEST(TtaLite, OverlappingTransmissionsGarbleTheBus) {
  // Two simultaneous transmitters: a listener must NOT synchronize (the
  // physical collision on a bus is unusable, paper §2.3); a single
  // transmitter synchronizes it to (sender + 1) mod n.
  TtaLite model(cfg(3));
  auto& sys = model.system();
  std::vector<int> v(sys.vars().size(), 0);
  v[static_cast<std::size_t>(model.state_var(2))] = TtaLite::kListen;
  v[static_cast<std::size_t>(model.counter_var(2))] = 1;
  v[static_cast<std::size_t>(model.out_var(0))] = TtaLite::kOutCs;
  v[static_cast<std::size_t>(model.out_var(1))] = TtaLite::kOutCs;
  // Transmitters idle in COLDSTART so the step is well-defined.
  for (int i : {0, 1}) {
    v[static_cast<std::size_t>(model.state_var(i))] = TtaLite::kColdstart;
    v[static_cast<std::size_t>(model.counter_var(i))] = 1;
  }
  sys.successor_valuations(v, [&](const std::vector<int>& next) {
    EXPECT_EQ(next[static_cast<std::size_t>(model.state_var(2))], TtaLite::kListen);
  });

  // Now a lone transmitter: node 2 synchronizes to position (0+1)%3 = 1.
  v[static_cast<std::size_t>(model.out_var(1))] = TtaLite::kOutQuiet;
  sys.successor_valuations(v, [&](const std::vector<int>& next) {
    EXPECT_EQ(next[static_cast<std::size_t>(model.state_var(2))], TtaLite::kActive);
    EXPECT_EQ(next[static_cast<std::size_t>(model.pos_var(2))], 1);
  });
}

}  // namespace
}  // namespace tt::kernel
