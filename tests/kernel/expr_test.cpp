#include "kernel/expr.hpp"

#include <gtest/gtest.h>

namespace tt::kernel {
namespace {

TEST(ExprPool, EvaluatesArithmetic) {
  ExprPool p;
  const std::vector<int> vals = {5, 2};
  EXPECT_EQ(p.eval(p.constant(7), vals), 7);
  EXPECT_EQ(p.eval(p.var(0), vals), 5);
  EXPECT_EQ(p.eval(p.add_mod(p.var(0), 1, 6), vals), 0);
  EXPECT_EQ(p.eval(p.add_mod(p.var(1), 3, 4), vals), 1);
  EXPECT_EQ(p.eval(p.add_mod(p.var(1), -3, 4), vals), 3);  // negative offsets wrap
}

TEST(ExprPool, EvaluatesComparisons) {
  ExprPool p;
  const std::vector<int> vals = {5, 2};
  EXPECT_EQ(p.eval(p.eq_const(p.var(0), 5), vals), 1);
  EXPECT_EQ(p.eval(p.eq_const(p.var(0), 4), vals), 0);
  EXPECT_EQ(p.eval(p.lt_const(p.var(1), 3), vals), 1);
  EXPECT_EQ(p.eval(p.ge_const(p.var(1), 3), vals), 0);
  EXPECT_EQ(p.eval(p.eq(p.var(0), p.var(1)), vals), 0);
  EXPECT_EQ(p.eval(p.eq(p.var(0), p.constant(5)), vals), 1);
}

TEST(ExprPool, EvaluatesBooleans) {
  ExprPool p;
  const std::vector<int> vals = {1, 0};
  const ExprId t = p.eq_const(p.var(0), 1);
  const ExprId f = p.eq_const(p.var(1), 1);
  EXPECT_EQ(p.eval(p.land(t, t), vals), 1);
  EXPECT_EQ(p.eval(p.land(t, f), vals), 0);
  EXPECT_EQ(p.eval(p.lor(f, t), vals), 1);
  EXPECT_EQ(p.eval(p.lor(f, f), vals), 0);
  EXPECT_EQ(p.eval(p.lnot(f), vals), 1);
}

TEST(ExprPool, EvaluatesIte) {
  ExprPool p;
  const std::vector<int> vals = {1, 7, 9};
  const ExprId cond = p.eq_const(p.var(0), 1);
  EXPECT_EQ(p.eval(p.ite(cond, p.var(1), p.var(2)), vals), 7);
  EXPECT_EQ(p.eval(p.ite(p.lnot(cond), p.var(1), p.var(2)), vals), 9);
}

TEST(ExprPool, AllAnyConventions) {
  ExprPool p;
  const std::vector<int> vals = {0};
  EXPECT_EQ(p.eval(p.all({}), vals), 1);   // empty conjunction is true
  EXPECT_EQ(p.eval(p.any({}), vals), 0);   // empty disjunction is false
  const ExprId t = p.eq_const(p.var(0), 0);
  const ExprId f = p.eq_const(p.var(0), 1);
  EXPECT_EQ(p.eval(p.all({t, t, f}), vals), 0);
  EXPECT_EQ(p.eval(p.any({f, f, t}), vals), 1);
}

}  // namespace
}  // namespace tt::kernel
