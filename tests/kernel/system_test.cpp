#include "kernel/system.hpp"

#include <gtest/gtest.h>

#include <set>

#include "kernel/packed_system.hpp"
#include "mc/liveness.hpp"
#include "mc/reachability.hpp"

namespace tt::kernel {
namespace {

/// A modulo-m counter with a nondeterministic "pause" command.
System make_counter(int m, bool can_pause) {
  System s;
  auto& e = s.exprs();
  const VarId c = s.add_var("c", m, 0);
  const int g = s.add_group("counter", /*else_stutter=*/false);
  const ExprId always = e.ge_const(e.var(c), 0);
  s.add_command(g, always, {{c, e.add_mod(e.var(c), 1, m)}});
  if (can_pause) s.add_command(g, always, {{c, e.var(c)}});
  return s;
}

TEST(System, SuccessorsFollowCommands) {
  System s = make_counter(4, false);
  std::vector<std::vector<int>> succs;
  s.successor_valuations({2}, [&](const std::vector<int>& v) { succs.push_back(v); });
  ASSERT_EQ(succs.size(), 1u);
  EXPECT_EQ(succs[0][0], 3);
  s.successor_valuations({3}, [&](const std::vector<int>& v) { succs.push_back(v); });
  EXPECT_EQ(succs[1][0], 0);  // wraps
}

TEST(System, NondeterministicChoiceWithinGroup) {
  System s = make_counter(4, true);
  std::set<int> next;
  s.successor_valuations({1}, [&](const std::vector<int>& v) { next.insert(v[0]); });
  EXPECT_EQ(next, (std::set<int>{1, 2}));
}

TEST(System, GroupsComposeSynchronously) {
  System s;
  auto& e = s.exprs();
  const VarId a = s.add_var("a", 3, 0);
  const VarId b = s.add_var("b", 3, 0);
  const int ga = s.add_group("ga", false);
  const int gb = s.add_group("gb", false);
  s.add_command(ga, e.ge_const(e.var(a), 0), {{a, e.add_mod(e.var(a), 1, 3)}});
  // b copies a's PRE-state value: synchronous semantics.
  s.add_command(gb, e.ge_const(e.var(b), 0), {{b, e.var(a)}});
  std::vector<std::vector<int>> succs;
  s.successor_valuations({1, 0}, [&](const std::vector<int>& v) { succs.push_back(v); });
  ASSERT_EQ(succs.size(), 1u);
  EXPECT_EQ(succs[0][0], 2);
  EXPECT_EQ(succs[0][1], 1);  // pre-state of a, not 2
}

TEST(System, StutterOnlyWhenConfigured) {
  System s;
  auto& e = s.exprs();
  const VarId a = s.add_var("a", 2, 0);
  const int g = s.add_group("g", /*else_stutter=*/true);
  s.add_command(g, e.eq_const(e.var(a), 1), {{a, e.constant(0)}});
  // Guard disabled at a=0: the group stutters instead of deadlocking.
  int count = 0;
  s.successor_valuations({0}, [&](const std::vector<int>& v) {
    EXPECT_EQ(v[0], 0);
    ++count;
  });
  EXPECT_EQ(count, 1);

  System d;
  auto& ed = d.exprs();
  const VarId ad = d.add_var("a", 2, 0);
  const int gd = d.add_group("g", /*else_stutter=*/false);
  d.add_command(gd, ed.eq_const(ed.var(ad), 1), {{ad, ed.constant(0)}});
  int dead = 0;
  d.successor_valuations({0}, [&](const std::vector<int>&) { ++dead; });
  EXPECT_EQ(dead, 0);  // deadlock
}

TEST(System, VariableOwnershipEnforced) {
  System s;
  auto& e = s.exprs();
  const VarId a = s.add_var("a", 2, 0);
  const int g1 = s.add_group("g1", false);
  const int g2 = s.add_group("g2", false);
  s.add_command(g1, e.ge_const(e.var(a), 0), {{a, e.constant(1)}});
  EXPECT_THROW(s.add_command(g2, e.ge_const(e.var(a), 0), {{a, e.constant(0)}}),
               std::invalid_argument);
}

TEST(System, NondeterministicInitialValuations) {
  System s;
  (void)s.add_var("fixed", 5, 3);
  (void)s.add_var_nondet("free", 3);
  std::vector<std::vector<int>> inits;
  s.initial_valuations([&](const std::vector<int>& v) { inits.push_back(v); });
  ASSERT_EQ(inits.size(), 3u);
  for (const auto& v : inits) EXPECT_EQ(v[0], 3);
}

TEST(PackedSystem, RoundTripAndEngineIntegration) {
  System s = make_counter(10, true);
  const PackedSystem ps(s);
  // pack/unpack round trip.
  for (int v = 0; v < 10; ++v) {
    EXPECT_EQ(ps.unpack(ps.pack({v})), std::vector<int>{v});
  }
  // The mc engines run directly on the adapter: 10 reachable states.
  auto stats = mc::count_reachable(ps);
  EXPECT_EQ(stats.states, 10u);
  // F(c == 7) fails: the pause self-loop lets the counter idle forever.
  auto live = mc::check_eventually(ps, [&](const PackedSystem::State& st) {
    return ps.unpack(st)[0] == 7;
  });
  EXPECT_EQ(live.verdict, mc::LivenessVerdict::kCycle);
  // Without pause it holds.
  System strict = make_counter(10, false);
  const PackedSystem pstrict(strict);
  auto live2 = mc::check_eventually(pstrict, [&](const PackedSystem::State& st) {
    return pstrict.unpack(st)[0] == 7;
  });
  EXPECT_EQ(live2.verdict, mc::LivenessVerdict::kHolds);
}

TEST(System, StateBits) {
  System s = make_counter(10, false);
  EXPECT_EQ(s.state_bits(), 4);
}

}  // namespace
}  // namespace tt::kernel
