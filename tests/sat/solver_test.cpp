#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace tt::sat {
namespace {

Lit pos(int v) { return Lit::make(v, false); }
Lit neg(int v) { return Lit::make(v, true); }

TEST(Solver, TrivialSatAndUnsat) {
  {
    Solver s;
    const int a = s.new_var();
    s.add_clause({pos(a)});
    ASSERT_EQ(s.solve(), Result::kSat);
    EXPECT_TRUE(s.value(a));
  }
  {
    Solver s;
    const int a = s.new_var();
    s.add_clause({pos(a)});
    s.add_clause({neg(a)});
    EXPECT_EQ(s.solve(), Result::kUnsat);
  }
  {
    Solver s;
    s.add_clause({});  // empty clause
    EXPECT_EQ(s.solve(), Result::kUnsat);
  }
}

TEST(Solver, UnitPropagationChains) {
  Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  const int c = s.new_var();
  s.add_clause({pos(a)});
  s.add_clause({neg(a), pos(b)});
  s.add_clause({neg(b), pos(c)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(a));
  EXPECT_TRUE(s.value(b));
  EXPECT_TRUE(s.value(c));
}

TEST(Solver, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): 3 pigeons, 2 holes. Classic small UNSAT requiring real search.
  Solver s;
  int x[3][2];
  for (auto& row : x) {
    for (int& v : row) v = s.new_var();
  }
  for (int p = 0; p < 3; ++p) s.add_clause({pos(x[p][0]), pos(x[p][1])});
  for (int h = 0; h < 2; ++h) {
    for (int p1 = 0; p1 < 3; ++p1) {
      for (int p2 = p1 + 1; p2 < 3; ++p2) {
        s.add_clause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, PigeonHole5Into4IsUnsat) {
  Solver s;
  constexpr int P = 5;
  constexpr int H = 4;
  int x[P][H];
  for (auto& row : x) {
    for (int& v : row) v = s.new_var();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < H; ++h) clause.push_back(pos(x[p][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.add_clause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Solver, TautologicalClauseIgnored) {
  Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  s.add_clause({pos(a), neg(a)});  // tautology: no constraint
  s.add_clause({pos(b)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(b));
}

/// Brute-force reference: checks satisfiability by enumeration.
bool brute_force_sat(int nvars, const std::vector<std::vector<int>>& clauses) {
  for (int m = 0; m < (1 << nvars); ++m) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (int lit : clause) {
        const int v = std::abs(lit) - 1;
        const bool val = ((m >> v) & 1) != 0;
        if ((lit > 0) == val) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(Solver, RandomInstancesAgreeWithBruteForce) {
  // Random 3-SAT near the phase transition, cross-checked against
  // enumeration. Property-style soundness test for the CDCL loop.
  Rng rng(2026);
  for (int iter = 0; iter < 300; ++iter) {
    const int nvars = 5 + static_cast<int>(rng.below(6));       // 5..10
    const int nclauses = static_cast<int>(4.2 * nvars) + static_cast<int>(rng.below(5));
    std::vector<std::vector<int>> clauses;
    for (int c = 0; c < nclauses; ++c) {
      std::vector<int> clause;
      for (int k = 0; k < 3; ++k) {
        const int v = 1 + static_cast<int>(rng.below(static_cast<std::uint32_t>(nvars)));
        clause.push_back(rng.below(2) != 0 ? v : -v);
      }
      clauses.push_back(clause);
    }
    Solver s;
    for (int v = 0; v < nvars; ++v) (void)s.new_var();
    for (const auto& clause : clauses) {
      std::vector<Lit> lits;
      for (int lit : clause) lits.push_back(Lit::make(std::abs(lit) - 1, lit < 0));
      s.add_clause(lits);
    }
    const bool expected = brute_force_sat(nvars, clauses);
    const Result got = s.solve();
    ASSERT_EQ(got == Result::kSat, expected) << "iteration " << iter;
    if (got == Result::kSat) {
      // Verify the model actually satisfies every clause.
      for (const auto& clause : clauses) {
        bool any = false;
        for (int lit : clause) {
          if ((lit > 0) == s.value(std::abs(lit) - 1)) {
            any = true;
            break;
          }
        }
        EXPECT_TRUE(any) << "model does not satisfy a clause";
      }
    }
  }
}

TEST(Solver, LargeChainedXorUnsat) {
  // x1 ^ x2 ^ ... ^ xn = 0 and = 1 encoded via chain variables: UNSAT.
  // Exercises learned-clause handling and restarts on a bigger instance.
  Solver s;
  constexpr int N = 24;
  std::vector<int> x;
  for (int i = 0; i < N; ++i) x.push_back(s.new_var());
  // chain c_i = x_0 ^ ... ^ x_i
  std::vector<int> c;
  c.push_back(x[0]);
  for (int i = 1; i < N; ++i) {
    const int ci = s.new_var();
    const int prev = c.back();
    // ci <-> prev XOR x[i]
    s.add_clause({neg(ci), pos(prev), pos(x[i])});
    s.add_clause({neg(ci), neg(prev), neg(x[i])});
    s.add_clause({pos(ci), neg(prev), pos(x[i])});
    s.add_clause({pos(ci), pos(prev), neg(x[i])});
    c.push_back(ci);
  }
  s.add_clause({pos(c.back())});
  s.add_clause({neg(c.back())});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

}  // namespace
}  // namespace tt::sat
