#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace tt::sat {
namespace {

Lit pos(int v) { return Lit::make(v, false); }
Lit neg(int v) { return Lit::make(v, true); }

TEST(Solver, TrivialSatAndUnsat) {
  {
    Solver s;
    const int a = s.new_var();
    s.add_clause({pos(a)});
    ASSERT_EQ(s.solve(), Result::kSat);
    EXPECT_TRUE(s.value(a));
  }
  {
    Solver s;
    const int a = s.new_var();
    s.add_clause({pos(a)});
    s.add_clause({neg(a)});
    EXPECT_EQ(s.solve(), Result::kUnsat);
  }
  {
    Solver s;
    s.add_clause({});  // empty clause
    EXPECT_EQ(s.solve(), Result::kUnsat);
  }
}

TEST(Solver, UnitPropagationChains) {
  Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  const int c = s.new_var();
  s.add_clause({pos(a)});
  s.add_clause({neg(a), pos(b)});
  s.add_clause({neg(b), pos(c)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(a));
  EXPECT_TRUE(s.value(b));
  EXPECT_TRUE(s.value(c));
}

TEST(Solver, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): 3 pigeons, 2 holes. Classic small UNSAT requiring real search.
  Solver s;
  int x[3][2];
  for (auto& row : x) {
    for (int& v : row) v = s.new_var();
  }
  for (int p = 0; p < 3; ++p) s.add_clause({pos(x[p][0]), pos(x[p][1])});
  for (int h = 0; h < 2; ++h) {
    for (int p1 = 0; p1 < 3; ++p1) {
      for (int p2 = p1 + 1; p2 < 3; ++p2) {
        s.add_clause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, PigeonHole5Into4IsUnsat) {
  Solver s;
  constexpr int P = 5;
  constexpr int H = 4;
  int x[P][H];
  for (auto& row : x) {
    for (int& v : row) v = s.new_var();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < H; ++h) clause.push_back(pos(x[p][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.add_clause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Solver, TautologicalClauseIgnored) {
  Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  s.add_clause({pos(a), neg(a)});  // tautology: no constraint
  s.add_clause({pos(b)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(b));
}

/// Brute-force reference: checks satisfiability by enumeration.
bool brute_force_sat(int nvars, const std::vector<std::vector<int>>& clauses) {
  for (int m = 0; m < (1 << nvars); ++m) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (int lit : clause) {
        const int v = std::abs(lit) - 1;
        const bool val = ((m >> v) & 1) != 0;
        if ((lit > 0) == val) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(Solver, RandomInstancesAgreeWithBruteForce) {
  // Random 3-SAT near the phase transition, cross-checked against
  // enumeration. Property-style soundness test for the CDCL loop.
  Rng rng(2026);
  for (int iter = 0; iter < 300; ++iter) {
    const int nvars = 5 + static_cast<int>(rng.below(6));       // 5..10
    const int nclauses = static_cast<int>(4.2 * nvars) + static_cast<int>(rng.below(5));
    std::vector<std::vector<int>> clauses;
    for (int c = 0; c < nclauses; ++c) {
      std::vector<int> clause;
      for (int k = 0; k < 3; ++k) {
        const int v = 1 + static_cast<int>(rng.below(static_cast<std::uint32_t>(nvars)));
        clause.push_back(rng.below(2) != 0 ? v : -v);
      }
      clauses.push_back(clause);
    }
    Solver s;
    for (int v = 0; v < nvars; ++v) (void)s.new_var();
    for (const auto& clause : clauses) {
      std::vector<Lit> lits;
      for (int lit : clause) lits.push_back(Lit::make(std::abs(lit) - 1, lit < 0));
      s.add_clause(lits);
    }
    const bool expected = brute_force_sat(nvars, clauses);
    const Result got = s.solve();
    ASSERT_EQ(got == Result::kSat, expected) << "iteration " << iter;
    if (got == Result::kSat) {
      // Verify the model actually satisfies every clause.
      for (const auto& clause : clauses) {
        bool any = false;
        for (int lit : clause) {
          if ((lit > 0) == s.value(std::abs(lit) - 1)) {
            any = true;
            break;
          }
        }
        EXPECT_TRUE(any) << "model does not satisfy a clause";
      }
    }
  }
}

TEST(Solver, AssumptionSolveFlipsPerCall) {
  // The same instance answers differently under different assumptions, and
  // the assumptions never leak into the formula.
  Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  s.add_clause({pos(a), pos(b)});
  ASSERT_EQ(s.solve({neg(a)}), Result::kSat);
  EXPECT_FALSE(s.value(a));
  EXPECT_TRUE(s.value(b));
  ASSERT_EQ(s.solve({neg(b)}), Result::kSat);
  EXPECT_TRUE(s.value(a));
  EXPECT_FALSE(s.value(b));
  ASSERT_EQ(s.solve({neg(a), neg(b)}), Result::kUnsat);
  ASSERT_EQ(s.solve(), Result::kSat);  // formula itself still satisfiable
}

TEST(Solver, ConflictCoreNamesCulpableAssumptions) {
  Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  const int c = s.new_var();
  const int unrelated = s.new_var();
  s.add_clause({neg(a), pos(b)});
  s.add_clause({neg(b), pos(c)});
  ASSERT_EQ(s.solve({pos(unrelated), pos(a), neg(c)}), Result::kUnsat);
  const auto& core = s.conflict_core();
  // The core must name a and ~c (the chain a -> b -> c) but never the
  // unrelated assumption.
  bool has_a = false;
  bool has_not_c = false;
  for (const Lit l : core) {
    EXPECT_NE(l.var(), unrelated);
    if (l == pos(a)) has_a = true;
    if (l == neg(c)) has_not_c = true;
  }
  EXPECT_TRUE(has_a);
  EXPECT_TRUE(has_not_c);
}

TEST(Solver, ActivationLiteralRetractsClause) {
  // The activation-literal pattern behind per-depth BMC constraints:
  // C ∨ ¬act is active while `act` is assumed and dead once ¬act is added.
  Solver s;
  const int x = s.new_var();
  const int act = s.new_var();
  s.add_clause({pos(x), neg(act)});
  ASSERT_EQ(s.solve({pos(act), neg(x)}), Result::kUnsat);
  s.add_clause({neg(act)});  // retire the constraint
  ASSERT_EQ(s.solve({neg(x)}), Result::kSat);
  EXPECT_FALSE(s.value(x));
}

TEST(Solver, LearnedClausesRetainedAcrossCalls) {
  // PHP(5,4) solved twice in one instance: the second refutation reuses the
  // first call's learned clauses (and must be cheaper, not dearer).
  Solver s;
  constexpr int P = 5;
  constexpr int H = 4;
  int x[P][H];
  for (auto& row : x) {
    for (int& v : row) v = s.new_var();
  }
  const int guard = s.new_var();  // keeps the instance satisfiable overall
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> clause{pos(guard)};
    for (int h = 0; h < H; ++h) clause.push_back(pos(x[p][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.add_clause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  ASSERT_EQ(s.solve({neg(guard)}), Result::kUnsat);
  const std::uint64_t learned_after_first = s.stats().learned;
  EXPECT_GT(learned_after_first, 0u);
  ASSERT_EQ(s.solve({neg(guard)}), Result::kUnsat);
  EXPECT_EQ(s.stats().solve_calls, 2u);
  EXPECT_GT(s.stats().clauses_reused, 0u);
}

TEST(Solver, RandomInstancesUnderAssumptionsAgreeWithBruteForce) {
  // Random 3-SAT plus random assumptions, cross-checked against enumeration
  // (assumptions modeled as unit clauses in the reference). Also validates
  // the conflict core: the formula plus only the core assumptions must
  // still be unsatisfiable.
  Rng rng(4091);
  Solver s;  // ONE instance across all iterations: the incremental path
  constexpr int kVars = 9;
  for (int v = 0; v < kVars; ++v) (void)s.new_var();
  std::vector<std::vector<int>> clauses;
  for (int iter = 0; iter < 200; ++iter) {
    // Grow the formula a little each round (stays mostly satisfiable).
    for (int c = 0; c < 2; ++c) {
      std::vector<int> clause;
      for (int k = 0; k < 3; ++k) {
        const int v = 1 + static_cast<int>(rng.below(kVars));
        clause.push_back(rng.below(2) != 0 ? v : -v);
      }
      clauses.push_back(clause);
      std::vector<Lit> lits;
      for (int lit : clause) lits.push_back(Lit::make(std::abs(lit) - 1, lit < 0));
      s.add_clause(lits);
    }
    // Random assumptions over distinct vars.
    std::vector<Lit> assumptions;
    std::vector<int> assumed_units;
    for (int v = 0; v < kVars; ++v) {
      if (rng.below(3) == 0) {
        const bool negate = rng.below(2) != 0;
        assumptions.push_back(Lit::make(v, negate));
        assumed_units.push_back(negate ? -(v + 1) : v + 1);
      }
    }
    auto with_units = clauses;
    for (int u : assumed_units) with_units.push_back({u});
    const bool expected = brute_force_sat(kVars, with_units);
    const Result got = s.solve(assumptions);
    if (got == Result::kUnsat && !expected) {
      // Core validity: formula + core alone is already unsat.
      auto with_core = clauses;
      for (const Lit l : s.conflict_core()) {
        with_core.push_back({l.negated() ? -(l.var() + 1) : l.var() + 1});
      }
      EXPECT_FALSE(brute_force_sat(kVars, with_core)) << "iteration " << iter;
    }
    ASSERT_EQ(got == Result::kSat, expected) << "iteration " << iter;
    if (got == Result::kSat) {
      for (const auto& clause : with_units) {
        bool any = false;
        for (int lit : clause) {
          if ((lit > 0) == s.value(std::abs(lit) - 1)) {
            any = true;
            break;
          }
        }
        EXPECT_TRUE(any) << "model does not satisfy a clause";
      }
    }
    if (!expected) {
      // Once the formula itself goes unsat, later rounds add nothing.
      if (s.solve() == Result::kUnsat) break;
    }
  }
}

TEST(Solver, LargeChainedXorUnsat) {
  // x1 ^ x2 ^ ... ^ xn = 0 and = 1 encoded via chain variables: UNSAT.
  // Exercises learned-clause handling and restarts on a bigger instance.
  Solver s;
  constexpr int N = 24;
  std::vector<int> x;
  for (int i = 0; i < N; ++i) x.push_back(s.new_var());
  // chain c_i = x_0 ^ ... ^ x_i
  std::vector<int> c;
  c.push_back(x[0]);
  for (int i = 1; i < N; ++i) {
    const int ci = s.new_var();
    const int prev = c.back();
    // ci <-> prev XOR x[i]
    s.add_clause({neg(ci), pos(prev), pos(x[i])});
    s.add_clause({neg(ci), neg(prev), neg(x[i])});
    s.add_clause({pos(ci), neg(prev), pos(x[i])});
    s.add_clause({pos(ci), pos(prev), neg(x[i])});
    c.push_back(ci);
  }
  s.add_clause({pos(c.back())});
  s.add_clause({neg(c.back())});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

}  // namespace
}  // namespace tt::sat
