#include "sat/dimacs.hpp"

#include <gtest/gtest.h>

namespace tt::sat {
namespace {

TEST(Dimacs, ParsesValidInput) {
  const auto cnf = parse_dimacs("c comment line\np cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0], (std::vector<int>{1, -2}));
  EXPECT_EQ(cnf.clauses[1], (std::vector<int>{2, 3}));
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_THROW(parse_dimacs("1 2 0\n"), std::invalid_argument);        // no header
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n1 3 0\n"), std::invalid_argument);  // var range
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n1 2\n"), std::invalid_argument);    // no terminator
  EXPECT_THROW(parse_dimacs("p cnf x y\n"), std::invalid_argument);
}

TEST(Dimacs, RoundTrip) {
  Cnf cnf;
  cnf.num_vars = 4;
  cnf.clauses = {{1, -2, 3}, {-4}, {2}};
  const auto parsed = parse_dimacs(to_dimacs(cnf));
  EXPECT_EQ(parsed.num_vars, cnf.num_vars);
  EXPECT_EQ(parsed.clauses, cnf.clauses);
}

TEST(Dimacs, LoadsIntoSolver) {
  const auto cnf = parse_dimacs("p cnf 2 2\n1 0\n-1 2 0\n");
  Solver solver;
  load(cnf, solver);
  ASSERT_EQ(solver.solve(), Result::kSat);
  EXPECT_TRUE(solver.value(0));
  EXPECT_TRUE(solver.value(1));
}

}  // namespace
}  // namespace tt::sat
