// Exhaustive round-trip of the engine-name surface (mc/engine.hpp): every
// EngineKind survives to_string -> parse_engine, unknown names are rejected
// without touching the output, and the documented CLI spellings are exactly
// the accepted set. scripts/check_docs.py keeps README.md aligned with the
// same source of truth.
#include <gtest/gtest.h>

#include <string>

#include "mc/engine.hpp"

namespace {

using tt::mc::EngineKind;
using tt::mc::parse_engine;
using tt::mc::to_string;

constexpr EngineKind kAllEngines[] = {
    EngineKind::kAuto,
    EngineKind::kSequential,
    EngineKind::kParallel,
    EngineKind::kSymbolic,
};

TEST(EngineTest, ToStringParseRoundTripIsExhaustive) {
  for (const EngineKind k : kAllEngines) {
    EngineKind parsed = EngineKind::kAuto;
    ASSERT_TRUE(parse_engine(to_string(k), parsed)) << to_string(k);
    EXPECT_EQ(parsed, k) << to_string(k);
  }
}

TEST(EngineTest, NamesAreTheDocumentedSpellings) {
  EXPECT_STREQ(to_string(EngineKind::kAuto), "auto");
  EXPECT_STREQ(to_string(EngineKind::kSequential), "seq");
  EXPECT_STREQ(to_string(EngineKind::kParallel), "par");
  EXPECT_STREQ(to_string(EngineKind::kSymbolic), "sym");
}

TEST(EngineTest, NamesAreDistinct) {
  for (const EngineKind a : kAllEngines) {
    for (const EngineKind b : kAllEngines) {
      if (a != b) EXPECT_STRNE(to_string(a), to_string(b));
    }
  }
}

TEST(EngineTest, UnknownNamesRejectedAndOutputUntouched) {
  for (const char* bad : {"", "?", "Auto", "SEQ", "seq ", " par", "symbolic",
                          "sequential", "parallel", "bdd", "sat"}) {
    EngineKind out = EngineKind::kParallel;
    EXPECT_FALSE(parse_engine(bad, out)) << "'" << bad << "'";
    EXPECT_EQ(out, EngineKind::kParallel) << "'" << bad << "'";
  }
}

TEST(EngineTest, ResolveThreadsPrefersExplicitCount) {
  EXPECT_EQ(tt::mc::resolve_threads(3), 3);
  EXPECT_GE(tt::mc::resolve_threads(0), 1);  // env or hardware, never zero
}

}  // namespace
