// A tiny explicit-graph TransitionSystem used to unit-test the engines
// independently of the TTA model.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/function_ref.hpp"

namespace tt::mc_test {

class ToySystem {
 public:
  static constexpr std::size_t kWords = 1;
  using State = std::array<std::uint64_t, 1>;

  ToySystem(std::vector<std::uint64_t> initial, std::vector<std::vector<std::uint64_t>> adj)
      : initial_(std::move(initial)), adj_(std::move(adj)) {}

  template <class F>
  void initial_states(F&& emit) const {
    for (auto v : initial_) emit(State{v});
  }

  template <class F>
  void successors(const State& s, F&& emit) const {
    for (auto v : adj_[s[0]]) emit(State{v});
  }

  /// Bit width of the packed state, for the symbolic engines: enough bits
  /// for the largest node index in the graph.
  [[nodiscard]] int state_bits() const {
    std::uint64_t max_node = adj_.empty() ? 0 : adj_.size() - 1;
    int bits = 1;
    while ((max_node >> bits) != 0) ++bits;
    return bits;
  }

 private:
  std::vector<std::uint64_t> initial_;
  std::vector<std::vector<std::uint64_t>> adj_;
};

}  // namespace tt::mc_test
