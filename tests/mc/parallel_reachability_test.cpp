#include "mc/parallel_reachability.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mc/reachability.hpp"
#include "toy_system.hpp"

namespace tt::mc {
namespace {

using mc_test::ToySystem;

EngineOptions with_threads(int t) {
  EngineOptions o;
  o.threads = t;
  return o;
}

TEST(ParallelReachability, InvariantHoldsOnChain) {
  ToySystem ts({0}, {{1}, {2}, {3}, {3}});
  for (int t : {1, 2, 4}) {
    auto r = check_invariant_parallel(
        ts, [](const ToySystem::State& s) { return s[0] <= 3; }, with_threads(t));
    EXPECT_EQ(r.verdict, Verdict::kHolds) << "threads=" << t;
    EXPECT_EQ(r.stats.states, 4u);
    EXPECT_EQ(r.stats.depth, 3);
    EXPECT_TRUE(r.stats.exhausted);
    EXPECT_EQ(r.stats.threads, t);
  }
}

TEST(ParallelReachability, ShortestCounterexample) {
  // Diamond: BFS must report the 2-edge path to the bad state, not the
  // 3-edge one, at every thread count.
  ToySystem ts({0}, {{1, 2}, {3}, {4}, {3}, {3}});
  for (int t : {1, 2, 4}) {
    auto r = check_invariant_parallel(
        ts, [](const ToySystem::State& s) { return s[0] != 3; }, with_threads(t));
    ASSERT_EQ(r.verdict, Verdict::kViolated) << "threads=" << t;
    ASSERT_EQ(r.trace.size(), 3u);
    EXPECT_EQ(r.trace.front()[0], 0u);
    EXPECT_EQ(r.trace.back()[0], 3u);
  }
}

TEST(ParallelReachability, ViolationInInitialState) {
  ToySystem ts({5}, {{}, {}, {}, {}, {}, {5}});
  auto r = check_invariant_parallel(
      ts, [](const ToySystem::State& s) { return s[0] != 5; }, with_threads(4));
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  ASSERT_EQ(r.trace.size(), 1u);
  EXPECT_EQ(r.trace[0][0], 5u);
  EXPECT_EQ(r.stats.depth, 0);
}

TEST(ParallelReachability, DepthLimitReportsLimit) {
  std::vector<std::vector<std::uint64_t>> adj;
  for (std::uint64_t i = 0; i < 100; ++i) adj.push_back({i + 1});
  adj.push_back({100});
  ToySystem ts({0}, adj);
  SearchLimits limits;
  limits.max_depth = 10;
  for (int t : {1, 2}) {
    EngineOptions opts(limits);
    opts.threads = t;
    auto r = check_invariant_parallel(
        ts, [](const ToySystem::State& s) { return s[0] != 100; }, opts);
    EXPECT_EQ(r.verdict, Verdict::kLimit) << "threads=" << t;
    EXPECT_FALSE(r.stats.exhausted);
    EXPECT_EQ(r.stats.depth, 11);  // same bookkeeping as the sequential engine
    EXPECT_EQ(r.stats.states, 12u);
  }
}

TEST(ParallelReachability, StateLimitReportsLimit) {
  std::vector<std::vector<std::uint64_t>> adj;
  for (std::uint64_t i = 0; i < 1000; ++i) adj.push_back({i + 1});
  adj.push_back({1000});
  ToySystem ts({0}, adj);
  SearchLimits limits;
  limits.max_states = 50;
  auto r = count_reachable_parallel(ts, EngineOptions(limits));
  EXPECT_FALSE(r.exhausted);
  EXPECT_GT(r.states, 50u);  // level-granular check overshoots by <= one level
}

TEST(ParallelReachability, CountReachableMatchesSequential) {
  ToySystem ts({0}, {{1, 2}, {3}, {3}, {0}});
  auto seq = count_reachable(ts);
  for (int t : {1, 2, 4}) {
    auto par = count_reachable_parallel(ts, with_threads(t));
    EXPECT_EQ(par.states, seq.states);
    EXPECT_EQ(par.transitions, seq.transitions);
    EXPECT_EQ(par.depth, seq.depth);
    EXPECT_TRUE(par.exhausted);
  }
}

TEST(ParallelReachability, AgreesWithSequentialOnRandomGraphs) {
  // Pseudo-random sparse digraphs; compare verdict / states / trace length.
  std::uint64_t seed = 42;
  auto next = [&seed] {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t n = 200 + next() % 300;
    std::vector<std::vector<std::uint64_t>> adj(n);
    for (std::uint64_t v = 0; v < n; ++v) {
      const int degree = static_cast<int>(next() % 4);
      for (int e = 0; e < degree; ++e) adj[v].push_back(next() % n);
    }
    ToySystem ts({0}, adj);
    const std::uint64_t bad = next() % n;
    auto pred = [bad](const ToySystem::State& s) { return s[0] != bad; };
    auto seq = check_invariant(ts, pred);
    for (int t : {1, 2, 4}) {
      auto par = check_invariant_parallel(ts, pred, with_threads(t));
      ASSERT_EQ(par.verdict, seq.verdict) << "round=" << round << " threads=" << t;
      ASSERT_EQ(par.trace.size(), seq.trace.size()) << "round=" << round;
      if (seq.verdict == Verdict::kHolds) {
        ASSERT_EQ(par.stats.states, seq.stats.states) << "round=" << round;
        ASSERT_EQ(par.stats.transitions, seq.stats.transitions);
        ASSERT_EQ(par.stats.depth, seq.stats.depth);
        ASSERT_EQ(par.stats.frontier_sizes, seq.stats.frontier_sizes);
      }
    }
  }
}

TEST(ParallelReachability, IdenticalTracesAcrossThreadCounts) {
  // The determinism guarantee: not just equal-length — byte-identical traces
  // for 1, 2, 4 and 8 threads.
  std::vector<std::vector<std::uint64_t>> adj(500);
  for (std::uint64_t v = 0; v < 500; ++v) {
    adj[v] = {(v * 7 + 1) % 500, (v * 13 + 3) % 500, (v + 1) % 500};
  }
  ToySystem ts({0}, adj);
  auto pred = [](const ToySystem::State& s) { return s[0] != 321; };
  auto base = check_invariant_parallel(ts, pred, with_threads(1));
  ASSERT_EQ(base.verdict, Verdict::kViolated);
  for (int t : {2, 4, 8}) {
    auto r = check_invariant_parallel(ts, pred, with_threads(t));
    EXPECT_EQ(r.verdict, base.verdict);
    EXPECT_EQ(r.trace, base.trace) << "threads=" << t;
    EXPECT_EQ(r.stats.states, base.stats.states);
    EXPECT_EQ(r.stats.frontier_sizes, base.stats.frontier_sizes);
  }
}

TEST(ParallelReachability, ProgressCallbackSeesEveryLevel) {
  ToySystem ts({0}, {{1}, {2}, {3}, {4}, {4}});
  EngineOptions opts;
  opts.threads = 2;
  std::vector<int> depths;
  opts.progress = [&](const LevelProgress& p) { depths.push_back(p.depth); };
  auto r = check_invariant_parallel(ts, [](const ToySystem::State&) { return true; }, opts);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(depths, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ParallelReachability, FrontierSizesRecorded) {
  // 0 -> {1,2} -> {3,4} pattern: levels of size 1, 2, 2.
  ToySystem ts({0}, {{1, 2}, {3}, {4}, {3}, {4}});
  auto seq = check_invariant(ts, [](const ToySystem::State&) { return true; });
  auto par = check_invariant_parallel(ts, [](const ToySystem::State&) { return true; },
                                      with_threads(2));
  const std::vector<std::size_t> expect{1, 2, 2};
  EXPECT_EQ(seq.stats.frontier_sizes, expect);
  EXPECT_EQ(par.stats.frontier_sizes, expect);
}

// ---------------------------------------------------------------------------
// Store equivalence and failure modes (DESIGN.md §3.7): the lock-free store
// must be observationally identical to the locked store — verdicts, counts,
// frontier profiles and byte-identical traces at every thread count — and
// must fail loudly (StateCapacityError, propagated out of the worker pool)
// when a level outgrows its quiescently-grown probe tables.
// ---------------------------------------------------------------------------

EngineOptions with_store(int threads, StoreKind kind, std::size_t budget_bytes = 0) {
  EngineOptions o;
  o.threads = threads;
  o.store.kind = kind;
  o.store.mem_budget_bytes = budget_bytes;
  return o;
}

TEST(ParallelReachability, LockFreeStoreMatchesLockedBitIdentically) {
  std::vector<std::vector<std::uint64_t>> adj(500);
  for (std::uint64_t v = 0; v < 500; ++v) {
    adj[v] = {(v * 7 + 1) % 500, (v * 13 + 3) % 500, (v + 1) % 500};
  }
  ToySystem ts({0}, adj);
  auto pred = [](const ToySystem::State& s) { return s[0] != 321; };
  auto base = check_invariant_parallel(ts, pred, with_store(1, StoreKind::kShardedLocked));
  ASSERT_EQ(base.verdict, Verdict::kViolated);
  for (int t : {1, 2, 4}) {
    auto r = check_invariant_parallel(ts, pred, with_store(t, StoreKind::kLockFree));
    EXPECT_EQ(r.verdict, base.verdict) << "threads=" << t;
    EXPECT_EQ(r.trace, base.trace) << "threads=" << t;  // byte-identical
    EXPECT_EQ(r.stats.states, base.stats.states);
    EXPECT_EQ(r.stats.transitions, base.stats.transitions);
    EXPECT_EQ(r.stats.frontier_sizes, base.stats.frontier_sizes);
  }
}

#if TT_LFSIM_HAS_SPILL
TEST(ParallelReachability, LockFreeStoreSpillsUnderBudgetWithExactCounts) {
  // 64 BFS levels x 640 states: enough full arena pages per shard that the
  // 1-byte budget forces sealed pages out of core mid-run. The beyond-RAM
  // run must finish with counts identical to the unconstrained locked run.
  constexpr std::uint64_t kLevels = 64, kWidth = 640;
  std::vector<std::vector<std::uint64_t>> adj(kLevels * kWidth);
  for (std::uint64_t v = 0; v < (kLevels - 1) * kWidth; ++v) {
    const std::uint64_t next_base = (v / kWidth + 1) * kWidth;
    adj[v] = {next_base + (v * 7 + 1) % kWidth, next_base + (v * 13 + 3) % kWidth};
  }
  std::vector<std::uint64_t> roots(kWidth);
  for (std::uint64_t i = 0; i < kWidth; ++i) roots[i] = i;
  ToySystem ts(roots, adj);
  auto pred = [](const ToySystem::State&) { return true; };

  auto locked = check_invariant_parallel(ts, pred, with_store(2, StoreKind::kShardedLocked));
  auto spilled = check_invariant_parallel(ts, pred,
                                          with_store(2, StoreKind::kLockFree, /*budget=*/1));
  EXPECT_EQ(spilled.verdict, locked.verdict);
  EXPECT_EQ(spilled.stats.states, locked.stats.states);
  EXPECT_EQ(spilled.stats.transitions, locked.stats.transitions);
  EXPECT_EQ(spilled.stats.frontier_sizes, locked.stats.frontier_sizes);
  EXPECT_GT(spilled.stats.pages_compressed, 0u);
  EXPECT_GT(spilled.stats.spill_bytes, 0u) << "budget of 1 byte must force a spill";
  EXPECT_EQ(locked.stats.spill_bytes, 0u);  // locked store has no spill tier
}
#endif  // TT_LFSIM_HAS_SPILL

TEST(ParallelReachability, LockFreeStoreCapacityErrorPropagatesMidLevel) {
  // Star burst: 600 hubs (past the serial-drain cutoff of 128 * threads), each
  // fanning out to 400 unique leaves — 240000 fresh states in one level, ~25x
  // the maintain headroom hint. The concurrent insert path cannot grow
  // mid-level by design, so a drain worker must throw StateCapacityError and
  // the engine must join its pool and rethrow, not hang or corrupt.
  constexpr std::uint64_t kHubs = 600, kFan = 400;
  std::vector<std::vector<std::uint64_t>> adj(1 + kHubs + kHubs * kFan);
  for (std::uint64_t h = 0; h < kHubs; ++h) {
    adj[0].push_back(1 + h);
    auto& fan = adj[1 + h];
    fan.reserve(kFan);
    for (std::uint64_t j = 0; j < kFan; ++j) fan.push_back(1 + kHubs + h * kFan + j);
  }
  ToySystem ts({0}, adj);
  auto pred = [](const ToySystem::State&) { return true; };
  EXPECT_THROW(check_invariant_parallel(ts, pred, with_store(4, StoreKind::kLockFree)),
               StateCapacityError);
  // The locked store grows inline under its shard mutex: same input completes.
  auto r = check_invariant_parallel(ts, pred, with_store(4, StoreKind::kShardedLocked));
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.stats.states, 1 + kHubs + kHubs * kFan);
}

TEST(ParallelReachability, SequentialCountReachableSignalsTruncation) {
  // Satellite regression: a limit-stopped count must carry exhausted=false.
  std::vector<std::vector<std::uint64_t>> adj;
  for (std::uint64_t i = 0; i < 100; ++i) adj.push_back({i + 1});
  adj.push_back({100});
  ToySystem ts({0}, adj);
  SearchLimits limits;
  limits.max_states = 10;
  auto truncated = count_reachable(ts, limits);
  EXPECT_FALSE(truncated.exhausted);
  auto full = count_reachable(ts);
  EXPECT_TRUE(full.exhausted);
  EXPECT_EQ(full.states, 101u);
}

}  // namespace
}  // namespace tt::mc
