// Counterexample replay over the real model: every lasso a liveness engine
// returns for a violating cluster configuration is re-executed through the
// Cluster successor relation (mc::validate_lasso) — stem edges, closing
// edge, and goal-freedom of the cycle all confirmed against the model
// itself, not the engine's bookkeeping. Covers the §5.2 faulty-guardian
// configurations (the documented VIOLATED liveness cells) for seq, par at
// 1/2/4 threads, and sym, plus cross-thread lasso identity for par.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/verifier.hpp"
#include "mc/lasso_check.hpp"
#include "tta/cluster.hpp"
#include "tta/properties.hpp"

namespace tt::mc {
namespace {

struct ReplayCell {
  const char* name;
  int n;
  bool big_bang;
  core::Lemma lemma;
};

/// The §5.2 residual-clique configuration: a faulty guardian with a tight
/// hub window keeps one node colliding between two ghost schedules forever,
/// so full liveness is VIOLATED (the paper's power-on arrangement excludes
/// exactly these runs; see lemma_sweep_test.cpp).
tta::ClusterConfig violating_config(const ReplayCell& cell) {
  tta::ClusterConfig cfg;
  cfg.n = cell.n;
  cfg.faulty_hub = 0;
  cfg.init_window = 3;
  cfg.hub_init_window = 1;
  cfg.big_bang = cell.big_bang;
  if (cell.lemma == core::Lemma::kReintegration) cfg.transient_restarts = 1;
  return cfg;
}

class LassoReplayGrid : public ::testing::TestWithParam<ReplayCell> {};

TEST_P(LassoReplayGrid, EveryEngineLassoReplaysThroughTheModel) {
  const ReplayCell cell = GetParam();
  const tta::ClusterConfig cfg =
      core::prepare_config(violating_config(cell), cell.lemma);
  const tta::Cluster cluster(cfg);
  auto goal = [&](const tta::Cluster::State& s) {
    return tta::all_correct_active(cfg, cluster.unpack(s));
  };

  core::VerifyOptions seq_opts;
  seq_opts.engine = EngineKind::kSequential;
  const auto seq = core::verify(violating_config(cell), cell.lemma, seq_opts);
  ASSERT_TRUE(seq.exhausted) << cell.name;
  ASSERT_FALSE(seq.holds) << cell.name << ": expected the §5.2 violation, got "
                          << seq.verdict_text;
  std::string why;
  ASSERT_TRUE(validate_lasso(cluster, goal, seq.trace, seq.loop_start,
                             /*require_initial_root=*/cell.lemma == core::Lemma::kLiveness,
                             &why))
      << cell.name << "/seq: " << why;

  std::vector<tta::Cluster::State> first_trace;
  std::size_t first_loop = 0;
  for (int threads : {1, 2, 4}) {
    core::VerifyOptions par_opts;
    par_opts.engine = EngineKind::kParallel;
    par_opts.threads = threads;
    const auto par = core::verify(violating_config(cell), cell.lemma, par_opts);
    ASSERT_EQ(par.engine_used, EngineKind::kParallel);
    ASSERT_FALSE(par.holds) << cell.name << "/par@" << threads << ": " << par.verdict_text;
    EXPECT_EQ(par.verdict_text, seq.verdict_text) << cell.name << "/par@" << threads;
    ASSERT_TRUE(validate_lasso(cluster, goal, par.trace, par.loop_start,
                               /*require_initial_root=*/true, &why))
        << cell.name << "/par@" << threads << ": " << why;
    if (threads == 1) {
      first_trace = par.trace;
      first_loop = par.loop_start;
    } else {
      // Bit-identical lasso at every thread count.
      EXPECT_EQ(par.trace, first_trace) << cell.name << "/par@" << threads;
      EXPECT_EQ(par.loop_start, first_loop) << cell.name << "/par@" << threads;
    }
  }

  core::VerifyOptions sym_opts;
  sym_opts.engine = EngineKind::kSymbolic;
  const auto sym = core::verify(violating_config(cell), cell.lemma, sym_opts);
  ASSERT_EQ(sym.engine_used, EngineKind::kSymbolic);
  ASSERT_FALSE(sym.holds) << cell.name << "/sym: " << sym.verdict_text;
  ASSERT_TRUE(validate_lasso(cluster, goal, sym.trace, sym.loop_start,
                             /*require_initial_root=*/true, &why))
      << cell.name << "/sym: " << why;
}

INSTANTIATE_TEST_SUITE_P(
    Violating, LassoReplayGrid,
    ::testing::Values(ReplayCell{"hub_n3", 3, true, core::Lemma::kLiveness},
                      ReplayCell{"hub_n4", 4, true, core::Lemma::kLiveness},
                      ReplayCell{"hub_n3_nobigbang", 3, false, core::Lemma::kLiveness},
                      ReplayCell{"hub_n3_reintegration", 3, true,
                                 core::Lemma::kReintegration}),
    [](const ::testing::TestParamInfo<ReplayCell>& info) {
      return std::string(info.param.name);
    });

TEST(LassoReplay, ValidatorRejectsCorruptedLassos) {
  // Sanity-check the validator itself: break a genuine lasso in each way it
  // is supposed to catch.
  const ReplayCell cell{"hub_n3", 3, true, core::Lemma::kLiveness};
  const tta::ClusterConfig cfg = core::prepare_config(violating_config(cell), cell.lemma);
  const tta::Cluster cluster(cfg);
  auto goal = [&](const tta::Cluster::State& s) {
    return tta::all_correct_active(cfg, cluster.unpack(s));
  };
  const auto r = core::verify(violating_config(cell), cell.lemma, {});
  ASSERT_FALSE(r.holds);
  std::string why;
  ASSERT_TRUE(validate_lasso(cluster, goal, r.trace, r.loop_start, true, &why)) << why;

  EXPECT_FALSE(validate_lasso(cluster, goal, {}, 0, false, &why));  // empty
  EXPECT_FALSE(validate_lasso(cluster, goal, r.trace, r.trace.size(), false, &why));
  auto broken = r.trace;
  broken[broken.size() / 2][0] ^= 1;  // corrupt a stem/cycle state
  EXPECT_FALSE(validate_lasso(cluster, goal, broken, r.loop_start, false, &why));
}

}  // namespace
}  // namespace tt::mc
