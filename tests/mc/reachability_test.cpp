#include "mc/reachability.hpp"

#include <gtest/gtest.h>

#include "toy_system.hpp"

namespace tt::mc {
namespace {

using mc_test::ToySystem;

TEST(Reachability, InvariantHoldsOnChain) {
  // 0 -> 1 -> 2 -> 3 (self-loop at 3)
  ToySystem ts({0}, {{1}, {2}, {3}, {3}});
  auto r = check_invariant(ts, [](const ToySystem::State& s) { return s[0] <= 3; });
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.stats.states, 4u);
  EXPECT_EQ(r.trace.size(), 0u);
}

TEST(Reachability, ShortestCounterexample) {
  // Diamond: 0 -> {1, 2}; 1 -> 3; 2 -> 4 -> 3; "bad" state is 3.
  ToySystem ts({0}, {{1, 2}, {3}, {4}, {3}, {3}});
  auto r = check_invariant(ts, [](const ToySystem::State& s) { return s[0] != 3; });
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  // BFS must find the 2-edge path 0 -> 1 -> 3, not the 3-edge one.
  ASSERT_EQ(r.trace.size(), 3u);
  EXPECT_EQ(r.trace[0][0], 0u);
  EXPECT_EQ(r.trace[1][0], 1u);
  EXPECT_EQ(r.trace[2][0], 3u);
}

TEST(Reachability, ViolationInInitialState) {
  ToySystem ts({5}, {{}, {}, {}, {}, {}, {5}});
  auto r = check_invariant(ts, [](const ToySystem::State& s) { return s[0] != 5; });
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  ASSERT_EQ(r.trace.size(), 1u);
  EXPECT_EQ(r.trace[0][0], 5u);
}

TEST(Reachability, DepthLimitReportsLimit) {
  // Long chain; the bad state sits beyond the depth limit.
  std::vector<std::vector<std::uint64_t>> adj;
  for (std::uint64_t i = 0; i < 100; ++i) adj.push_back({i + 1});
  adj.push_back({100});
  ToySystem ts({0}, adj);
  SearchLimits limits;
  limits.max_depth = 10;
  auto r = check_invariant(
      ts, [](const ToySystem::State& s) { return s[0] != 100; }, limits);
  EXPECT_EQ(r.verdict, Verdict::kLimit);
  EXPECT_LE(r.stats.states, 13u);
}

TEST(Reachability, BoundedSearchFindsShallowBug) {
  // The bounded-model-checking usage: violation at depth 3, bound 5.
  std::vector<std::vector<std::uint64_t>> adj{{1}, {2}, {3}, {3}};
  ToySystem ts({0}, adj);
  SearchLimits limits;
  limits.max_depth = 5;
  auto r = check_invariant(
      ts, [](const ToySystem::State& s) { return s[0] != 3; }, limits);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.trace.size(), 4u);
}

TEST(Reachability, CountReachable) {
  ToySystem ts({0}, {{1, 2}, {3}, {3}, {0}});
  auto stats = count_reachable(ts);
  EXPECT_EQ(stats.states, 4u);
  EXPECT_EQ(stats.transitions, 5u);
}

TEST(Reachability, MultipleInitialStates) {
  ToySystem ts({0, 2}, {{1}, {1}, {3}, {3}});
  auto r = check_invariant(ts, [](const ToySystem::State&) { return true; });
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.stats.states, 4u);
}

TEST(Reachability, StatsDepthIsBfsEccentricity) {
  ToySystem ts({0}, {{1}, {2}, {3}, {3}});
  auto r = check_invariant(ts, [](const ToySystem::State&) { return true; });
  EXPECT_EQ(r.stats.depth, 3);
}

}  // namespace
}  // namespace tt::mc
