// Unit tests for the parallel OWCTY liveness engine and the symbolic EG
// engine on toy graphs: verdict agreement with the sequential engine on
// every toy case, bit-identical parallel results across thread counts, lasso
// replay validation, and a larger deterministic stress graph that gives the
// TSan CI job real concurrency to bite on.
#include "mc/parallel_liveness.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mc/lasso_check.hpp"
#include "mc/liveness.hpp"
#include "mc/symbolic_liveness.hpp"
#include "toy_system.hpp"

namespace tt::mc {
namespace {

using mc_test::ToySystem;

auto goal_is(std::uint64_t g) {
  return [g](const ToySystem::State& s) { return s[0] == g; };
}

auto goal_at_least(std::uint64_t g) {
  return [g](const ToySystem::State& s) { return s[0] >= g; };
}

EngineOptions with_threads(int threads) {
  EngineOptions opts;
  opts.threads = threads;
  return opts;
}

// --- F(goal): every sequential toy case, at 1/2/4 threads -----------------

TEST(ParallelLiveness, HoldsWhenEveryPathReachesGoal) {
  ToySystem ts({0}, {{1, 2}, {3}, {3}, {3}});
  for (int t : {1, 2, 4}) {
    auto r = check_eventually_parallel(ts, goal_is(3), with_threads(t));
    EXPECT_EQ(r.verdict, LivenessVerdict::kHolds) << "threads=" << t;
    EXPECT_EQ(r.stats.residue_states, 0u) << "threads=" << t;
  }
}

TEST(ParallelLiveness, DetectsGoalFreeCycle) {
  ToySystem ts({0}, {{1}, {2}, {1}});
  for (int t : {1, 2, 4}) {
    auto r = check_eventually_parallel(ts, goal_is(9), with_threads(t));
    ASSERT_EQ(r.verdict, LivenessVerdict::kCycle) << "threads=" << t;
    std::string why;
    EXPECT_TRUE(validate_lasso(ts, goal_is(9), r.trace, r.loop_start,
                               /*require_initial_root=*/true, &why))
        << "threads=" << t << ": " << why;
    // Residue = states with an alive successor at the fixpoint: the 1-2
    // cycle plus the stem state 0 (it keeps an edge into the cycle).
    EXPECT_EQ(r.stats.residue_states, 3u) << "threads=" << t;
  }
}

TEST(ParallelLiveness, CycleThroughGoalStateIsFine) {
  ToySystem ts({0}, {{1}, {0}});
  for (int t : {1, 2, 4}) {
    EXPECT_EQ(check_eventually_parallel(ts, goal_is(1), with_threads(t)).verdict,
              LivenessVerdict::kHolds)
        << "threads=" << t;
  }
}

TEST(ParallelLiveness, SelfLoopBeforeGoalViolates) {
  ToySystem ts({0}, {{0, 1}, {1}});
  for (int t : {1, 2, 4}) {
    auto r = check_eventually_parallel(ts, goal_is(1), with_threads(t));
    ASSERT_EQ(r.verdict, LivenessVerdict::kCycle) << "threads=" << t;
    // Matches the sequential lasso exactly: stem [0], self-loop at index 0.
    ASSERT_EQ(r.trace.size(), 1u) << "threads=" << t;
    EXPECT_EQ(r.trace[0][0], 0u) << "threads=" << t;
    EXPECT_EQ(r.loop_start, 0u) << "threads=" << t;
  }
}

TEST(ParallelLiveness, DeadlockInGoalFreeRegionViolates) {
  ToySystem ts({0}, {{1}, {}});
  for (int t : {1, 2, 4}) {
    auto r = check_eventually_parallel(ts, goal_is(9), with_threads(t));
    ASSERT_EQ(r.verdict, LivenessVerdict::kDeadlock) << "threads=" << t;
    ASSERT_EQ(r.trace.size(), 2u) << "threads=" << t;
    EXPECT_EQ(r.trace.back()[0], 1u) << "threads=" << t;
    std::string why;
    EXPECT_TRUE(validate_deadlock_path(ts, goal_is(9), r.trace, /*goal_free_path=*/true, &why))
        << "threads=" << t << ": " << why;
  }
}

TEST(ParallelLiveness, InitialGoalStateHolds) {
  ToySystem ts({3}, {{0}, {0}, {0}, {0}});
  for (int t : {1, 2, 4}) {
    auto r = check_eventually_parallel(ts, goal_is(3), with_threads(t));
    EXPECT_EQ(r.verdict, LivenessVerdict::kHolds) << "threads=" << t;
    EXPECT_EQ(r.stats.states, 0u) << "threads=" << t;  // goal-free region never entered
  }
}

TEST(ParallelLiveness, MultipleRootsOneViolating) {
  ToySystem ts({0, 4}, {{1}, {1}, {}, {}, {5}, {4}});
  for (int t : {1, 2, 4}) {
    auto r = check_eventually_parallel(ts, goal_is(1), with_threads(t));
    EXPECT_EQ(r.verdict, LivenessVerdict::kCycle) << "threads=" << t;
    std::string why;
    EXPECT_TRUE(validate_lasso(ts, goal_is(1), r.trace, r.loop_start,
                               /*require_initial_root=*/true, &why))
        << "threads=" << t << ": " << why;
  }
}

TEST(ParallelLiveness, StateLimitReported) {
  std::vector<std::vector<std::uint64_t>> adj;
  for (std::uint64_t i = 0; i < 1000; ++i) adj.push_back({i + 1});
  adj.push_back({1000});
  ToySystem ts({0}, adj);
  EngineOptions opts;
  opts.limits.max_states = 10;
  for (int t : {1, 2, 4}) {
    opts.threads = t;
    auto r = check_eventually_parallel(ts, goal_at_least(2000), opts);
    EXPECT_EQ(r.verdict, LivenessVerdict::kLimit) << "threads=" << t;
    EXPECT_FALSE(r.stats.exhausted) << "threads=" << t;
  }
}

// --- AG AF(goal) ----------------------------------------------------------

TEST(ParallelLivenessAlwaysEventually, DistinguishesRecoveryFromOneShot) {
  ToySystem ts({0}, {{1}, {2}, {2}});
  for (int t : {1, 2, 4}) {
    EXPECT_EQ(check_eventually_parallel(ts, goal_is(1), with_threads(t)).verdict,
              LivenessVerdict::kHolds)
        << "threads=" << t;
    auto r = check_always_eventually_parallel(ts, goal_is(1), with_threads(t));
    ASSERT_EQ(r.verdict, LivenessVerdict::kCycle) << "threads=" << t;
    std::string why;
    EXPECT_TRUE(validate_lasso(ts, goal_is(1), r.trace, r.loop_start,
                               /*require_initial_root=*/true, &why))
        << "threads=" << t << ": " << why;
  }
}

TEST(ParallelLivenessAlwaysEventually, HoldsForAbsorbingGoal) {
  ToySystem ts({0}, {{1, 2}, {2}, {2}});
  for (int t : {1, 2, 4}) {
    EXPECT_EQ(check_always_eventually_parallel(ts, goal_is(2), with_threads(t)).verdict,
              LivenessVerdict::kHolds)
        << "threads=" << t;
  }
}

TEST(ParallelLivenessAlwaysEventually, HoldsWhenEveryCyclePassesGoal) {
  ToySystem ts({0}, {{1}, {0}});
  for (int t : {1, 2, 4}) {
    EXPECT_EQ(check_always_eventually_parallel(ts, goal_is(1), with_threads(t)).verdict,
              LivenessVerdict::kHolds)
        << "threads=" << t;
  }
}

TEST(ParallelLivenessAlwaysEventually, FindsDeadlockAfterGoal) {
  ToySystem ts({0}, {{1}, {2}, {}});
  for (int t : {1, 2, 4}) {
    auto r = check_always_eventually_parallel(ts, goal_is(1), with_threads(t));
    EXPECT_EQ(r.verdict, LivenessVerdict::kDeadlock) << "threads=" << t;
  }
}

TEST(ParallelLivenessAlwaysEventually, ReportsLimit) {
  std::vector<std::vector<std::uint64_t>> adj;
  for (std::uint64_t i = 0; i < 100; ++i) adj.push_back({i + 1});
  adj.push_back({100});
  ToySystem ts({0}, adj);
  EngineOptions opts;
  opts.limits.max_states = 5;
  for (int t : {1, 2, 4}) {
    opts.threads = t;
    EXPECT_EQ(check_always_eventually_parallel(ts, goal_at_least(100), opts).verdict,
              LivenessVerdict::kLimit)
        << "threads=" << t;
  }
}

// --- determinism + stats parity on a larger deterministic graph -----------

/// A reproducible pseudo-random digraph (fixed LCG seed): `n` states, out
/// degree 1..4, and a goal predicate that leaves goal-free cycles in place.
ToySystem stress_graph(std::uint64_t n) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  auto rng = [&x] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 33;
  };
  std::vector<std::vector<std::uint64_t>> adj(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint64_t deg = 1 + rng() % 4;
    for (std::uint64_t k = 0; k < deg; ++k) adj[v].push_back(rng() % n);
  }
  return ToySystem({0}, adj);
}

TEST(ParallelLivenessStress, BitIdenticalAcrossThreadCounts) {
  const ToySystem ts = stress_graph(20000);
  auto goal = goal_at_least(19900);  // a thin goal layer: plenty of gf cycles
  const auto base = check_eventually_parallel(ts, goal, with_threads(1));
  ASSERT_EQ(base.verdict, LivenessVerdict::kCycle);
  std::string why;
  ASSERT_TRUE(validate_lasso(ts, goal, base.trace, base.loop_start,
                             /*require_initial_root=*/true, &why))
      << why;
  for (int t : {2, 4, 8}) {
    const auto r = check_eventually_parallel(ts, goal, with_threads(t));
    EXPECT_EQ(r.verdict, base.verdict) << "threads=" << t;
    EXPECT_EQ(r.stats.states, base.stats.states) << "threads=" << t;
    EXPECT_EQ(r.stats.transitions, base.stats.transitions) << "threads=" << t;
    EXPECT_EQ(r.stats.hash_ops, base.stats.hash_ops) << "threads=" << t;
    EXPECT_EQ(r.stats.trim_rounds, base.stats.trim_rounds) << "threads=" << t;
    EXPECT_EQ(r.stats.residue_states, base.stats.residue_states) << "threads=" << t;
    EXPECT_EQ(r.stats.frontier_sizes, base.stats.frontier_sizes) << "threads=" << t;
    EXPECT_EQ(r.trace, base.trace) << "threads=" << t;
    EXPECT_EQ(r.loop_start, base.loop_start) << "threads=" << t;
  }
}

TEST(ParallelLivenessStress, HoldsRunMatchesSequentialCounts) {
  // A layered DAG into an absorbing goal: liveness holds, so seq and par
  // sweep the same goal-free region and must agree on every hot-path count.
  std::vector<std::vector<std::uint64_t>> adj;
  constexpr std::uint64_t kLayers = 50, kWidth = 40;
  const std::uint64_t goal_node = kLayers * kWidth;
  for (std::uint64_t l = 0; l < kLayers; ++l) {
    for (std::uint64_t i = 0; i < kWidth; ++i) {
      std::vector<std::uint64_t> out;
      if (l + 1 < kLayers) {
        out.push_back((l + 1) * kWidth + i);
        out.push_back((l + 1) * kWidth + (i + 1) % kWidth);
      } else {
        out.push_back(goal_node);
      }
      adj.push_back(std::move(out));
    }
  }
  adj.push_back({goal_node});  // absorbing goal
  std::vector<std::uint64_t> inits;
  for (std::uint64_t i = 0; i < kWidth; ++i) inits.push_back(i);
  ToySystem ts(inits, adj);

  const auto seq = check_eventually(ts, goal_is(goal_node));
  ASSERT_EQ(seq.verdict, LivenessVerdict::kHolds);
  for (int t : {1, 2, 4}) {
    const auto par = check_eventually_parallel(ts, goal_is(goal_node), with_threads(t));
    EXPECT_EQ(par.verdict, LivenessVerdict::kHolds) << "threads=" << t;
    EXPECT_EQ(par.stats.states, seq.stats.states) << "threads=" << t;
    EXPECT_EQ(par.stats.transitions, seq.stats.transitions) << "threads=" << t;
    EXPECT_EQ(par.stats.hash_ops, seq.stats.hash_ops) << "threads=" << t;
    EXPECT_EQ(par.stats.residue_states, 0u) << "threads=" << t;
  }
}

// --- the symbolic EG engine on the same toy cases -------------------------

TEST(SymbolicLiveness, MatchesSequentialVerdictOnEveryToyCase) {
  struct Case {
    ToySystem ts;
    std::uint64_t goal;
    LivenessVerdict expect;
  };
  const Case f_cases[] = {
      {ToySystem({0}, {{1, 2}, {3}, {3}, {3}}), 3, LivenessVerdict::kHolds},
      {ToySystem({0}, {{1}, {2}, {1}}), 9, LivenessVerdict::kCycle},
      {ToySystem({0}, {{1}, {0}}), 1, LivenessVerdict::kHolds},
      {ToySystem({0}, {{0, 1}, {1}}), 1, LivenessVerdict::kCycle},
      {ToySystem({0}, {{1}, {}}), 9, LivenessVerdict::kDeadlock},
      {ToySystem({3}, {{0}, {0}, {0}, {0}}), 3, LivenessVerdict::kHolds},
      {ToySystem({0, 4}, {{1}, {1}, {}, {}, {5}, {4}}), 1, LivenessVerdict::kCycle},
  };
  for (std::size_t i = 0; i < std::size(f_cases); ++i) {
    const auto& c = f_cases[i];
    auto r = check_eventually_symbolic(c.ts, goal_is(c.goal));
    EXPECT_EQ(r.verdict, c.expect) << "F case " << i;
    EXPECT_EQ(r.stats.hash_ops, 0u) << "F case " << i;
    if (r.verdict == LivenessVerdict::kCycle) {
      std::string why;
      EXPECT_TRUE(validate_lasso(c.ts, goal_is(c.goal), r.trace, r.loop_start,
                                 /*require_initial_root=*/true, &why))
          << "F case " << i << ": " << why;
    }
  }
  const Case ag_cases[] = {
      {ToySystem({0}, {{1}, {2}, {2}}), 1, LivenessVerdict::kCycle},
      {ToySystem({0}, {{1, 2}, {2}, {2}}), 2, LivenessVerdict::kHolds},
      {ToySystem({0}, {{1}, {0}}), 1, LivenessVerdict::kHolds},
      {ToySystem({0}, {{1}, {2}, {}}), 1, LivenessVerdict::kDeadlock},
  };
  for (std::size_t i = 0; i < std::size(ag_cases); ++i) {
    const auto& c = ag_cases[i];
    auto r = check_always_eventually_symbolic(c.ts, goal_is(c.goal));
    EXPECT_EQ(r.verdict, c.expect) << "AG AF case " << i;
  }
}

TEST(SymbolicLiveness, ReportsLimitAndIterations) {
  std::vector<std::vector<std::uint64_t>> adj;
  for (std::uint64_t i = 0; i < 100; ++i) adj.push_back({i + 1});
  adj.push_back({100});
  ToySystem ts({0}, adj);
  SearchLimits limits;
  limits.max_states = 5;
  EXPECT_EQ(check_eventually_symbolic(ts, goal_at_least(2000), limits).verdict,
            LivenessVerdict::kLimit);

  // A violated run must report at least one EG fixpoint iteration.
  ToySystem cyc({0}, {{1}, {2}, {1}});
  auto r = check_eventually_symbolic(cyc, goal_at_least(9));
  ASSERT_EQ(r.verdict, LivenessVerdict::kCycle);
  EXPECT_GT(r.stats.bdd_iterations, 0);
}

}  // namespace
}  // namespace tt::mc
