// The hash-once contract, asserted on graphs where every emission is known
// by construction: stats.hash_ops must equal the number of candidate states
// handed to an engine (initial-state emissions + successor emissions) —
// hash_words runs exactly once per candidate, never per probe, per shard
// decision or per insert (DESIGN.md §3.2). The companion golden-counts test
// asserts the same identity on the full TTA model.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mc/liveness.hpp"
#include "mc/parallel_liveness.hpp"
#include "mc/parallel_reachability.hpp"
#include "mc/reachability.hpp"
#include "toy_system.hpp"

namespace tt::mc {
namespace {

using mc_test::ToySystem;

/// Emissions an exhaustive BFS over the toy graph performs: one per initial
/// state plus one per outgoing edge of every reachable vertex.
std::size_t expected_candidates(const std::vector<std::uint64_t>& initial,
                                const std::vector<std::vector<std::uint64_t>>& adj) {
  std::vector<bool> reached(adj.size(), false);
  std::vector<std::uint64_t> queue = initial;
  for (auto v : initial) reached[v] = true;
  std::size_t emissions = initial.size();
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (auto t : adj[queue[head]]) {
      ++emissions;
      if (!reached[t]) {
        reached[t] = true;
        queue.push_back(t);
      }
    }
  }
  return emissions;
}

TEST(HashOnce, SequentialBfsHashesEachCandidateExactlyOnce) {
  // Diamond with a self-loop and duplicate edges: plenty of re-visits, so a
  // hash-per-probe bug would overshoot and a suppressed-candidate bug would
  // undershoot.
  const std::vector<std::uint64_t> initial = {0};
  const std::vector<std::vector<std::uint64_t>> adj = {
      {1, 2, 1}, {3}, {3, 0}, {3}};
  ToySystem ts(initial, adj);
  auto r = check_invariant(ts, [](const ToySystem::State&) { return true; });
  ASSERT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.stats.hash_ops, expected_candidates(initial, adj));
  EXPECT_EQ(r.stats.hash_ops, r.stats.transitions + initial.size());
  // Every duplicate candidate is accounted for, split between the
  // recently-seen cache and the interning table.
  EXPECT_EQ(r.stats.dup_transitions, r.stats.hash_ops - r.stats.states);
  EXPECT_LE(r.stats.cache_hits, r.stats.dup_transitions);
}

TEST(HashOnce, ParallelBfsHashesEachCandidateExactlyOnceAtEveryThreadCount) {
  const std::vector<std::uint64_t> initial = {0, 4};
  const std::vector<std::vector<std::uint64_t>> adj = {
      {1, 2}, {2, 3}, {3, 3}, {0, 4}, {4, 1}};
  const std::size_t expected = expected_candidates(initial, adj);
  ToySystem ts(initial, adj);
  for (int threads : {1, 2, 4}) {
    EngineOptions opts;
    opts.threads = threads;
    auto r = check_invariant_parallel(
        ts, [](const ToySystem::State&) { return true; }, opts);
    ASSERT_EQ(r.verdict, Verdict::kHolds) << "threads=" << threads;
    EXPECT_EQ(r.stats.hash_ops, expected) << "threads=" << threads;
    EXPECT_EQ(r.stats.hash_ops, r.stats.transitions + initial.size())
        << "threads=" << threads;
    EXPECT_EQ(r.stats.dup_transitions, r.stats.hash_ops - r.stats.states)
        << "threads=" << threads;
  }
}

TEST(HashOnce, LassoSearchHashesOnlyGoalFreeCandidates) {
  // States >= 3 are goal states; lasso search never interns (and therefore
  // never hashes) them — edges into the goal region are filtered first.
  const std::vector<std::uint64_t> initial = {0};
  const std::vector<std::vector<std::uint64_t>> adj = {{1, 3}, {2, 4}, {3}, {3}, {4}};
  ToySystem ts(initial, adj);
  auto r = check_eventually(ts, [](const ToySystem::State& s) { return s[0] >= 3; });
  ASSERT_EQ(r.verdict, LivenessVerdict::kHolds);
  // Goal-free candidates: the root 0, plus successor emissions 1, 2 from
  // expanding {0, 1} and the goal-free part of their edges (1 from 0; 2 from
  // 1). Edges to 3/4 are enumerated as transitions but never hashed.
  EXPECT_EQ(r.stats.hash_ops, 3u);
  EXPECT_LT(r.stats.hash_ops, r.stats.transitions + initial.size());
}

TEST(HashOnce, ParallelLivenessHashesOnlyGoalFreeCandidatesAtEveryThreadCount) {
  // The OWCTY materialization phase obeys the same contract as the
  // sequential lasso search: goal candidates are enumerated as transitions
  // but never hashed, and the count matches seq exactly.
  const std::vector<std::uint64_t> initial = {0};
  const std::vector<std::vector<std::uint64_t>> adj = {{1, 3}, {2, 4}, {3}, {3}, {4}};
  ToySystem ts(initial, adj);
  auto goal = [](const ToySystem::State& s) { return s[0] >= 3; };
  const auto seq = check_eventually(ts, goal);
  ASSERT_EQ(seq.verdict, LivenessVerdict::kHolds);
  for (int threads : {1, 2, 4}) {
    EngineOptions opts;
    opts.threads = threads;
    auto r = check_eventually_parallel(ts, goal, opts);
    ASSERT_EQ(r.verdict, LivenessVerdict::kHolds) << "threads=" << threads;
    EXPECT_EQ(r.stats.hash_ops, 3u) << "threads=" << threads;
    EXPECT_EQ(r.stats.hash_ops, seq.stats.hash_ops) << "threads=" << threads;
    EXPECT_EQ(r.stats.transitions, seq.stats.transitions) << "threads=" << threads;
    EXPECT_EQ(r.stats.dup_transitions, r.stats.hash_ops - r.stats.states)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace tt::mc
