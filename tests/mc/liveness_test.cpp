#include "mc/liveness.hpp"

#include <gtest/gtest.h>

#include "toy_system.hpp"

namespace tt::mc {
namespace {

using mc_test::ToySystem;

auto goal_is(std::uint64_t g) {
  return [g](const ToySystem::State& s) { return s[0] == g; };
}

TEST(Liveness, HoldsWhenEveryPathReachesGoal) {
  // 0 -> {1, 2} -> 3 (goal, self-loop)
  ToySystem ts({0}, {{1, 2}, {3}, {3}, {3}});
  auto r = check_eventually(ts, goal_is(3));
  EXPECT_EQ(r.verdict, LivenessVerdict::kHolds);
}

TEST(Liveness, DetectsGoalFreeCycle) {
  // 0 -> 1 -> 2 -> 1 (cycle), goal 9 unreachable on that loop.
  ToySystem ts({0}, {{1}, {2}, {1}});
  auto r = check_eventually(ts, goal_is(9));
  ASSERT_EQ(r.verdict, LivenessVerdict::kCycle);
  // Lasso: stem 0, cycle 1 -> 2 -> back to 1.
  ASSERT_GE(r.trace.size(), 3u);
  EXPECT_EQ(r.trace[0][0], 0u);
  EXPECT_EQ(r.trace[r.loop_start][0], 1u);
  EXPECT_EQ(r.trace.back()[0], 2u);
}

TEST(Liveness, CycleThroughGoalStateIsFine) {
  // 0 -> 1(goal) -> 0: the only cycle passes through the goal, so every
  // infinite behaviour hits the goal infinitely often.
  ToySystem ts({0}, {{1}, {0}});
  auto r = check_eventually(ts, goal_is(1));
  EXPECT_EQ(r.verdict, LivenessVerdict::kHolds);
}

TEST(Liveness, SelfLoopBeforeGoalViolates) {
  // 0 can loop on itself forever instead of moving to goal 1.
  ToySystem ts({0}, {{0, 1}, {1}});
  auto r = check_eventually(ts, goal_is(1));
  ASSERT_EQ(r.verdict, LivenessVerdict::kCycle);
  EXPECT_EQ(r.loop_start, 0u);
}

TEST(Liveness, DeadlockInGoalFreeRegionViolates) {
  // 0 -> 1, and 1 has no successors at all.
  ToySystem ts({0}, {{1}, {}});
  auto r = check_eventually(ts, goal_is(9));
  ASSERT_EQ(r.verdict, LivenessVerdict::kDeadlock);
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace.back()[0], 1u);
}

TEST(Liveness, InitialGoalStateHolds) {
  ToySystem ts({3}, {{0}, {0}, {0}, {0}});
  auto r = check_eventually(ts, goal_is(3));
  EXPECT_EQ(r.verdict, LivenessVerdict::kHolds);
  EXPECT_EQ(r.stats.states, 0u);  // goal-free region never entered
}

TEST(Liveness, MultipleRootsOneViolating) {
  // Root 0 reaches goal; root 4 spins in a goal-free cycle 4 -> 5 -> 4.
  ToySystem ts({0, 4}, {{1}, {1}, {}, {}, {5}, {4}});
  auto r = check_eventually(ts, goal_is(1));
  EXPECT_EQ(r.verdict, LivenessVerdict::kCycle);
}

TEST(AlwaysEventually, DistinguishesRecoveryFromOneShot) {
  // 0 -> 1(goal) -> 2 -> 2: F(1) holds (every initial behaviour passes 1),
  // but AG AF(1) fails: after the goal, the run can loop in 2 forever.
  ToySystem ts({0}, {{1}, {2}, {2}});
  EXPECT_EQ(check_eventually(ts, goal_is(1)).verdict, LivenessVerdict::kHolds);
  auto r = check_always_eventually(ts, goal_is(1));
  EXPECT_EQ(r.verdict, LivenessVerdict::kCycle);
}

TEST(AlwaysEventually, HoldsForAbsorbingGoal) {
  // Goal state 2 loops through the goal forever: recovery guaranteed.
  ToySystem ts({0}, {{1, 2}, {2}, {2}});
  EXPECT_EQ(check_always_eventually(ts, goal_is(2)).verdict, LivenessVerdict::kHolds);
}

TEST(AlwaysEventually, HoldsWhenEveryCyclePassesGoal) {
  // 0 -> 1(goal) -> 0: the only cycle includes the goal.
  ToySystem ts({0}, {{1}, {0}});
  EXPECT_EQ(check_always_eventually(ts, goal_is(1)).verdict, LivenessVerdict::kHolds);
}

TEST(AlwaysEventually, FindsDeadlockAfterGoal) {
  // 0 -> 1(goal) -> 2, and 2 has no successors.
  ToySystem ts({0}, {{1}, {2}, {}});
  auto r = check_always_eventually(ts, goal_is(1));
  EXPECT_EQ(r.verdict, LivenessVerdict::kDeadlock);
}

TEST(AlwaysEventually, ReportsLimit) {
  std::vector<std::vector<std::uint64_t>> adj;
  for (std::uint64_t i = 0; i < 100; ++i) adj.push_back({i + 1});
  adj.push_back({100});
  ToySystem ts({0}, adj);
  SearchLimits limits;
  limits.max_states = 5;
  EXPECT_EQ(check_always_eventually(ts, goal_is(100), limits).verdict,
            LivenessVerdict::kLimit);
}

TEST(Liveness, StateLimitReported) {
  std::vector<std::vector<std::uint64_t>> adj;
  for (std::uint64_t i = 0; i < 1000; ++i) adj.push_back({i + 1});
  adj.push_back({1000});
  ToySystem ts({0}, adj);
  SearchLimits limits;
  limits.max_states = 10;
  auto r = check_eventually(ts, goal_is(2000), limits);
  EXPECT_EQ(r.verdict, LivenessVerdict::kLimit);
}

}  // namespace
}  // namespace tt::mc
