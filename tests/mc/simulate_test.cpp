#include "mc/simulate.hpp"

#include <gtest/gtest.h>

#include "toy_system.hpp"

namespace tt::mc {
namespace {

using mc_test::ToySystem;

TEST(Simulate, WalksRequestedSteps) {
  ToySystem ts({0}, {{1}, {2}, {0}});
  Rng rng(5);
  auto r = simulate(ts, 10, rng);
  EXPECT_FALSE(r.deadlocked);
  ASSERT_EQ(r.trace.size(), 11u);
  for (std::size_t i = 0; i + 1 < r.trace.size(); ++i) {
    EXPECT_EQ(r.trace[i + 1][0], (r.trace[i][0] + 1) % 3);
  }
}

TEST(Simulate, StopsAtDeadlock) {
  ToySystem ts({0}, {{1}, {}});
  Rng rng(5);
  auto r = simulate(ts, 10, rng);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_EQ(r.trace.size(), 2u);
}

TEST(Simulate, UntilPredicate) {
  ToySystem ts({0}, {{1}, {2}, {3}, {3}});
  Rng rng(5);
  auto r = simulate_until(
      ts, [](const ToySystem::State& s) { return s[0] == 2; }, 100, rng);
  EXPECT_EQ(r.trace.back()[0], 2u);
  EXPECT_EQ(r.trace.size(), 3u);
}

TEST(Simulate, UntilRespectsMaxSteps) {
  ToySystem ts({0}, {{0}});
  Rng rng(5);
  auto r = simulate_until(
      ts, [](const ToySystem::State&) { return false; }, 7, rng);
  EXPECT_EQ(r.trace.size(), 8u);
}

TEST(Simulate, BranchingCoversAllSuccessorsEventually) {
  ToySystem ts({0}, {{1, 2, 3}, {0}, {0}, {0}});
  Rng rng(11);
  bool seen[4] = {};
  auto r = simulate(ts, 500, rng);
  for (const auto& s : r.trace) seen[s[0]] = true;
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_TRUE(seen[3]);
}

}  // namespace
}  // namespace tt::mc
