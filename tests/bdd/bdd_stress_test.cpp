// Stress net for the production BDD manager: randomized operations checked
// against a bit-parallel truth-table oracle (14 variables = 16384-entry
// tables), with the GC threshold forced low so mark-and-sweep collections
// interleave the workload; plus targeted tests for GC safety under live
// handles, complement-edge canonicity, and op-cache behaviour across
// collections.
#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace tt::bdd {
namespace {

constexpr int kVars = 14;
constexpr std::size_t kTableWords = (std::size_t{1} << kVars) / 64;

using Table = std::vector<std::uint64_t>;

Table table_of_var(int v) {
  Table t(kTableWords, 0);
  for (std::size_t i = 0; i < kTableWords * 64; ++i) {
    if ((i >> v) & 1u) t[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  return t;
}

/// Evaluates f on every assignment and compares with the oracle table.
void expect_matches(Manager& m, NodeId f, const Table& t, const char* label) {
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < kTableWords * 64; ++i) {
    const std::uint64_t assignment = i;  // bit v of i is the value of var v
    const bool expected = ((t[i / 64] >> (i % 64)) & 1u) != 0;
    if (m.eval_bits(f, &assignment) != expected) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u) << label;
}

std::size_t popcount(const Table& t) {
  std::size_t n = 0;
  for (const std::uint64_t w : t) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

TEST(BddStress, RandomizedOpsMatchTruthTableOracleUnderForcedGc) {
  Manager m(kVars);
  m.set_gc_threshold(500);  // far below the workload's live size: GC churns
  Rng rng(20260807);

  struct Fn {
    NodeId id;
    Table tt;
  };
  std::vector<Fn> pool;
  for (int v = 0; v < kVars; ++v) {
    pool.push_back({m.var(v), table_of_var(v)});
    // Projections are pinned internally; no ref needed.
  }

  const auto pick = [&]() -> const Fn& {
    return pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
  };
  for (int round = 0; round < 300; ++round) {
    const Fn& a = pick();
    const Fn& b = pick();
    const Fn& c = pick();
    Fn out;
    switch (rng.below(5)) {
      case 0:
        out.id = m.land(a.id, b.id);
        out.tt = a.tt;
        for (std::size_t w = 0; w < kTableWords; ++w) out.tt[w] &= b.tt[w];
        break;
      case 1:
        out.id = m.lor(a.id, b.id);
        out.tt = a.tt;
        for (std::size_t w = 0; w < kTableWords; ++w) out.tt[w] |= b.tt[w];
        break;
      case 2:
        out.id = m.lxor(a.id, b.id);
        out.tt = a.tt;
        for (std::size_t w = 0; w < kTableWords; ++w) out.tt[w] ^= b.tt[w];
        break;
      case 3:
        out.id = m.lnot(a.id);
        out.tt = a.tt;
        for (std::size_t w = 0; w < kTableWords; ++w) out.tt[w] = ~out.tt[w];
        break;
      default:
        out.id = m.ite(a.id, b.id, c.id);
        out.tt.resize(kTableWords);
        for (std::size_t w = 0; w < kTableWords; ++w) {
          out.tt[w] = (a.tt[w] & b.tt[w]) | (~a.tt[w] & c.tt[w]);
        }
        break;
    }
    m.ref(out.id);
    pool.push_back(std::move(out));
    // Retire old non-projection functions so collections find garbage.
    while (pool.size() > kVars + 24) {
      const std::size_t victim =
          kVars + rng.below(static_cast<std::uint32_t>(pool.size() - kVars));
      m.deref(pool[victim].id);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }

  ASSERT_GT(m.stats().gc_runs, 0u) << "threshold too high: GC never exercised";

  // Every surviving handle still denotes its oracle function, pointwise and
  // by exact model count.
  for (std::size_t i = 0; i < pool.size(); ++i) {
    expect_matches(m, pool[i].id, pool[i].tt, "pool survivor");
    EXPECT_EQ(m.sat_count_exact(pool[i].id), BigUint(popcount(pool[i].tt))) << i;
  }
}

TEST(BddStress, ExistsAndRelationalProductMatchOracle) {
  Manager m(kVars);
  Rng rng(7);
  for (int round = 0; round < 40; ++round) {
    // Two random small functions grown from literals by random connectives.
    const int v0 = static_cast<int>(rng.below(kVars));
    NodeId f = m.var(v0);
    Table ft = table_of_var(v0);
    NodeId g = kTrue;
    Table gt(kTableWords, ~std::uint64_t{0});
    for (int k = 0; k < 4; ++k) {
      const int v = static_cast<int>(rng.below(kVars));
      const bool pos = rng.below(2) != 0;
      const Table vt = table_of_var(v);
      if (rng.below(2)) {
        f = pos ? m.lor(f, m.var(v)) : m.land(f, m.nvar(v));
        for (std::size_t w = 0; w < kTableWords; ++w) {
          ft[w] = pos ? (ft[w] | vt[w]) : (ft[w] & ~vt[w]);
        }
      } else {
        g = pos ? m.lxor(g, m.var(v)) : m.land(g, m.var(v));
        for (std::size_t w = 0; w < kTableWords; ++w) {
          gt[w] = pos ? (gt[w] ^ vt[w]) : (gt[w] & vt[w]);
        }
      }
    }

    // Random quantification cube.
    std::vector<int> cube_vars;
    std::vector<std::uint8_t> mask(kVars, 0);
    for (int v = 0; v < kVars; ++v) {
      if (rng.below(3) == 0) {
        cube_vars.push_back(v);
        mask[static_cast<std::size_t>(v)] = 1;
      }
    }

    // Oracle: exists v. t  ==  t[v:=0] | t[v:=1], folded over the cube.
    auto quantified = [&](Table t) {
      for (const int v : cube_vars) {
        Table out(kTableWords, 0);
        for (std::size_t i = 0; i < kTableWords * 64; ++i) {
          const std::size_t i0 = i & ~(std::size_t{1} << v);
          const std::size_t i1 = i0 | (std::size_t{1} << v);
          const bool bit = (((t[i0 / 64] >> (i0 % 64)) | (t[i1 / 64] >> (i1 % 64))) & 1u) != 0;
          if (bit) out[i / 64] |= std::uint64_t{1} << (i % 64);
        }
        t = std::move(out);
      }
      return t;
    };

    Table fg = ft;
    for (std::size_t w = 0; w < kTableWords; ++w) fg[w] &= gt[w];
    expect_matches(m, m.and_exists(f, g, mask), quantified(fg), "and_exists");
    expect_matches(m, m.exists(f, mask), quantified(ft), "exists");

    // The relational product must equal quantify-after-conjoin.
    EXPECT_EQ(m.and_exists(f, g, mask), m.exists(m.land(f, g), mask));
  }
}

TEST(BddStress, GcPreservesLiveHandlesAndFreesGarbage) {
  Manager m(10);
  const NodeId keep = m.lor(m.land(m.var(0), m.var(3)), m.lxor(m.var(5), m.nvar(7)));
  m.ref(keep);
  const BigUint keep_count = m.sat_count_exact(keep);

  // Pile up unreferenced garbage.
  NodeId junk = kFalse;
  for (int v = 0; v < 10; ++v) {
    junk = m.lor(junk, m.land(m.var(v), m.nvar((v + 3) % 10)));
  }
  const std::size_t before = m.node_count();
  const std::size_t freed = m.gc();
  EXPECT_GT(freed, 0u);
  EXPECT_LT(m.node_count(), before);

  // The protected function is intact: same count, same structure on rebuild.
  EXPECT_EQ(m.sat_count_exact(keep), keep_count);
  const NodeId rebuilt =
      m.lor(m.land(m.var(0), m.var(3)), m.lxor(m.var(5), m.nvar(7)));
  EXPECT_EQ(rebuilt, keep) << "canonicity lost across collection";
  m.deref(keep);
}

TEST(BddStress, DerefMakesNodesCollectable) {
  Manager m(8);
  NodeId f = m.land(m.var(0), m.lor(m.var(1), m.nvar(2)));
  m.ref(f);
  (void)m.gc();
  const std::size_t live_with_f = m.node_count();
  m.deref(f);
  (void)m.gc();
  EXPECT_LT(m.node_count(), live_with_f);
}

TEST(BddStress, ComplementEdgeCanonicity) {
  Manager m(8);
  const NodeId f = m.lor(m.land(m.var(0), m.var(1)), m.lxor(m.var(2), m.var(5)));

  // Negation is an edge-bit flip: involutive, free, and allocation-free.
  EXPECT_EQ(m.lnot(m.lnot(f)), f);
  const std::size_t arena_before = m.stats().arena_nodes;
  const NodeId nf = m.lnot(f);
  EXPECT_EQ(m.stats().arena_nodes, arena_before);
  EXPECT_NE(nf, f);

  // A function and its complement share every node.
  EXPECT_EQ(m.land(f, nf), kFalse);
  EXPECT_EQ(m.lor(f, nf), kTrue);
  EXPECT_EQ(m.lxor(f, nf), kTrue);
  EXPECT_EQ(m.lxor(f, f), kFalse);

  // De Morgan holds by construction, not by re-derivation.
  const NodeId g = m.land(m.var(3), m.nvar(6));
  EXPECT_EQ(m.lnot(m.land(f, g)), m.lor(m.lnot(f), m.lnot(g)));
  EXPECT_EQ(m.lnot(m.lor(f, g)), m.land(m.lnot(f), m.lnot(g)));

  // Complement counting rule: |!f| = 2^n - |f|.
  EXPECT_EQ(m.sat_count_exact(f) + m.sat_count_exact(nf), BigUint::pow2(8));
}

TEST(BddStress, OpCacheConsistentAcrossCollection) {
  Manager m(10);
  const NodeId f = m.lor(m.land(m.var(0), m.var(4)), m.var(9));
  const NodeId g = m.lxor(m.var(2), m.nvar(7));
  const NodeId r1 = m.land(f, g);
  m.ref(f);
  m.ref(g);
  m.ref(r1);

  // Collection drops the op cache (its entries may name swept nodes); the
  // recomputation must still return the identical node id.
  const std::size_t gc_before = m.stats().gc_runs;
  (void)m.gc();
  EXPECT_EQ(m.stats().gc_runs, gc_before + 1);
  EXPECT_EQ(m.land(f, g), r1);

  // And the cache warms back up: the second identical call hits.
  const auto lookups_before = m.stats().cache_lookups;
  const auto hits_before = m.stats().cache_hits;
  EXPECT_EQ(m.land(f, g), r1);
  EXPECT_GT(m.stats().cache_lookups, lookups_before);
  EXPECT_GT(m.stats().cache_hits, hits_before);
  m.deref(f);
  m.deref(g);
  m.deref(r1);
}

}  // namespace
}  // namespace tt::bdd
