#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace tt::bdd {
namespace {

TEST(Bdd, TerminalRules) {
  Manager m(4);
  const NodeId x = m.var(0);
  EXPECT_EQ(m.land(x, kTrue), x);
  EXPECT_EQ(m.land(x, kFalse), kFalse);
  EXPECT_EQ(m.lor(x, kTrue), kTrue);
  EXPECT_EQ(m.lor(x, kFalse), x);
  EXPECT_EQ(m.lnot(m.lnot(x)), x);  // canonical: hash-consing gives identity
}

TEST(Bdd, HashConsingGivesCanonicity) {
  Manager m(4);
  // (x0 & x1) | (x1 & x0) must be the same node.
  const NodeId a = m.land(m.var(0), m.var(1));
  const NodeId b = m.land(m.var(1), m.var(0));
  EXPECT_EQ(a, b);
  // De Morgan as identity on canonical forms.
  const NodeId lhs = m.lnot(m.land(m.var(0), m.var(1)));
  const NodeId rhs = m.lor(m.nvar(0), m.nvar(1));
  EXPECT_EQ(lhs, rhs);
}

TEST(Bdd, EvalMatchesTruthTableOnRandomFormulas) {
  // Property test: build random formulas over 6 variables, compare BDD
  // evaluation against direct formula evaluation on all 64 assignments.
  constexpr int kVars = 6;
  Rng rng(9);
  for (int iter = 0; iter < 200; ++iter) {
    Manager m(kVars);
    // Random formula as a vector of ops applied to a stack.
    std::vector<NodeId> stack;
    std::vector<std::string> ops;
    auto rand_leaf = [&]() {
      const int v = static_cast<int>(rng.below(kVars));
      return rng.below(2) != 0 ? m.var(v) : m.nvar(v);
    };
    stack.push_back(rand_leaf());
    for (int step = 0; step < 12; ++step) {
      const int choice = static_cast<int>(rng.below(4));
      if (choice == 0 || stack.size() < 2) {
        stack.push_back(rand_leaf());
      } else if (choice == 1) {
        const NodeId a = stack.back();
        stack.pop_back();
        stack.back() = m.land(stack.back(), a);
      } else if (choice == 2) {
        const NodeId a = stack.back();
        stack.pop_back();
        stack.back() = m.lor(stack.back(), a);
      } else {
        stack.back() = m.lnot(stack.back());
      }
    }
    // Fold the stack into one formula while tracking a reference evaluator
    // is complex; instead compare sat_count against brute-force eval.
    NodeId f = stack[0];
    for (std::size_t i = 1; i < stack.size(); ++i) f = m.lxor(f, stack[i]);
    double expected = 0;
    for (int a = 0; a < (1 << kVars); ++a) {
      std::vector<bool> assignment(kVars);
      for (int v = 0; v < kVars; ++v) assignment[v] = ((a >> v) & 1) != 0;
      if (m.eval(f, assignment)) expected += 1;
    }
    EXPECT_DOUBLE_EQ(m.sat_count(f), expected) << "iteration " << iter;
  }
}

TEST(Bdd, SatCountKnownValues) {
  Manager m(4);
  EXPECT_DOUBLE_EQ(m.sat_count(kTrue), 16.0);
  EXPECT_DOUBLE_EQ(m.sat_count(kFalse), 0.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.var(0)), 8.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.land(m.var(0), m.var(3))), 4.0);
  const NodeId parity =
      m.lxor(m.lxor(m.var(0), m.var(1)), m.lxor(m.var(2), m.var(3)));
  EXPECT_DOUBLE_EQ(m.sat_count(parity), 8.0);
}

TEST(Bdd, ExistsQuantification) {
  Manager m(3);
  // f = (x0 & x1) | (!x0 & x2); exists x0. f = x1 | x2.
  const NodeId f = m.lor(m.land(m.var(0), m.var(1)), m.land(m.nvar(0), m.var(2)));
  std::vector<std::uint8_t> q = {1, 0, 0};
  EXPECT_EQ(m.exists(f, q), m.lor(m.var(1), m.var(2)));
  // Quantifying everything yields a constant.
  q = {1, 1, 1};
  EXPECT_EQ(m.exists(f, q), kTrue);
  EXPECT_EQ(m.exists(kFalse, q), kFalse);
}

TEST(Bdd, RenameShiftsVariables) {
  Manager m(4);
  // f over odd variables {1, 3}; rename to {0, 2}.
  const NodeId f = m.land(m.var(1), m.nvar(3));
  const std::vector<int> map = {0, 0, 2, 2};
  EXPECT_EQ(m.rename(f, map), m.land(m.var(0), m.nvar(2)));
}

TEST(Bdd, AnySatProducesModel) {
  Manager m(4);
  const NodeId f = m.land(m.lor(m.var(0), m.var(1)), m.nvar(2));
  const auto model = m.any_sat(f);
  EXPECT_TRUE(m.eval(f, model));
}

TEST(Bdd, AndExistsIsRelationalProduct) {
  Manager m(4);
  // S(x0) = x0; T(x0, x1) = x1 == !x0. exists x0. S & T = !x1... wait:
  // with S = x0, T = (x1 <-> !x0): the product forces x1 = false.
  const NodeId s = m.var(0);
  const NodeId t = m.lnot(m.lxor(m.var(1), m.lnot(m.var(0))));
  std::vector<std::uint8_t> q = {1, 0, 0, 0};
  EXPECT_EQ(m.and_exists(s, t, q), m.nvar(1));
}

}  // namespace
}  // namespace tt::bdd
