#include "bdd/symbolic.hpp"

#include <gtest/gtest.h>

#include "kernel/packed_system.hpp"
#include "kernel/ttalite.hpp"
#include "mc/reachability.hpp"

namespace tt::bdd {
namespace {

/// Counter modulo m with an optional pause command.
kernel::System make_counter(int m, bool can_pause) {
  kernel::System s;
  auto& e = s.exprs();
  const kernel::VarId c = s.add_var("c", m, 0);
  const int g = s.add_group("counter", false);
  const kernel::ExprId always = e.ge_const(e.var(c), 0);
  s.add_command(g, always, {{c, e.add_mod(e.var(c), 1, m)}});
  if (can_pause) s.add_command(g, always, {{c, e.var(c)}});
  return s;
}

TEST(Symbolic, CountsCounterStates) {
  kernel::System s = make_counter(10, false);
  SymbolicEngine engine(s);
  auto r = engine.count_reachable();
  EXPECT_DOUBLE_EQ(r.reachable_states, 10.0);
  EXPECT_TRUE(r.holds);
  EXPECT_GT(r.iterations, 0);
}

TEST(Symbolic, InvariantOnCounter) {
  kernel::System s = make_counter(7, true);
  auto& e = s.exprs();
  const kernel::ExprId within = e.lt_const(e.var(0), 7);
  SymbolicEngine within_engine(s);
  EXPECT_TRUE(within_engine.check_invariant(within).holds);

  const kernel::ExprId never5 = e.lnot(e.eq_const(e.var(0), 5));
  SymbolicEngine never5_engine(s);
  auto r = never5_engine.check_invariant(never5);
  EXPECT_FALSE(r.holds);
  ASSERT_EQ(r.violating_state.size(), 1u);
  EXPECT_EQ(r.violating_state[0], 5);
}

TEST(Symbolic, NondeterministicInitialStates) {
  kernel::System s;
  auto& e = s.exprs();
  const kernel::VarId a = s.add_var_nondet("a", 5);
  const int g = s.add_group("g", false);
  s.add_command(g, e.ge_const(e.var(a), 0), {{a, e.var(a)}});
  SymbolicEngine engine(s);
  auto r = engine.count_reachable();
  EXPECT_DOUBLE_EQ(r.reachable_states, 5.0);  // only in-domain encodings
}

TEST(Symbolic, AgreesWithExplicitEngineOnTtaLite) {
  // The crown-jewel cross-check (paper §3: symbolic vs explicit must agree):
  // same model, same property, two independently built engines.
  for (int faulty_degree : {0, 1, 2}) {
    kernel::TtaLiteConfig cfg;
    cfg.n = 3;
    cfg.init_window = 2;
    cfg.faulty_node = faulty_degree == 0 ? -1 : 0;
    cfg.fault_degree = faulty_degree == 0 ? 1 : faulty_degree;
    kernel::TtaLite model(cfg);

    const kernel::PackedSystem ps(model.system());
    auto explicit_stats = mc::count_reachable(ps);

    SymbolicEngine engine(model.system());
    auto symbolic = engine.count_reachable();

    EXPECT_DOUBLE_EQ(symbolic.reachable_states,
                     static_cast<double>(explicit_stats.states))
        << "degree " << faulty_degree;
  }
}

TEST(Symbolic, TtaLiteSafetyVerdictsMatchExplicit) {
  for (int degree : {1, 2}) {
    kernel::TtaLiteConfig cfg;
    cfg.n = 3;
    cfg.init_window = 2;
    cfg.faulty_node = 0;
    cfg.fault_degree = degree;
    kernel::TtaLite model(cfg);

    const kernel::PackedSystem ps(model.system());
    auto explicit_result = mc::check_invariant(ps, [&](const kernel::PackedSystem::State& s) {
      return model.safety(ps.unpack(s));
    });

    SymbolicEngine engine(model.system());
    auto symbolic = engine.check_invariant(model.safety_expr());

    EXPECT_EQ(symbolic.holds, explicit_result.verdict == mc::Verdict::kHolds)
        << "degree " << degree;
    if (!symbolic.holds) {
      // The symbolic violating state must really violate the predicate.
      EXPECT_FALSE(model.safety(symbolic.violating_state));
    }
  }
}

}  // namespace
}  // namespace tt::bdd
